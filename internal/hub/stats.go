package hub

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"ekho/internal/trace"
)

// latBuckets sizes the dispatch-latency histogram: bucket i counts
// packets whose receive-to-worker latency was in [2^(i-1), 2^i) ns, so
// the range spans 1 ns to ~9 s in powers of two.
const latBuckets = 34

// counters is the hub's always-on accounting, updated with atomics from
// the receive loop, the shard workers and the reaper so a Snapshot never
// takes a lock.
type counters struct {
	active       atomic.Int64
	peak         atomic.Int64
	admitted     atomic.Int64
	rejected     atomic.Int64
	reaped       atomic.Int64
	ended        atomic.Int64
	packetsIn    atomic.Int64
	packetsOut   atomic.Int64
	strays       atomic.Int64
	sendErrs     atomic.Int64
	measurements atomic.Int64
	actions      atomic.Int64
	resamples    atomic.Int64
	// shed counts data-plane packets dropped because their shard's queue
	// was full (overload shedding); ctrlDropped counts control packets
	// dropped because a shard's control lane overflowed (pathological).
	shed        atomic.Int64
	ctrlDropped atomic.Int64
	// latency is the packet-weighted dispatch-latency histogram, updated
	// once per processed batch by the shard workers.
	latency [latBuckets]atomic.Int64
}

// observeDispatch records one batch's receive-to-worker latency for all
// of its packets (one histogram update per batch, not per packet).
func (c *counters) observeDispatch(ns int64, packets int) {
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	c.latency[b].Add(int64(packets))
}

// LatencyHist is a point-in-time copy of the dispatch-latency histogram:
// bucket i counts packets whose latency was below 2^i ns.
type LatencyHist [latBuckets]int64

// Count returns the total number of packets observed.
func (l LatencyHist) Count() int64 {
	var n int64
	for _, v := range l {
		n += v
	}
	return n
}

// Sub returns the histogram of packets observed since prev.
func (l LatencyHist) Sub(prev LatencyHist) LatencyHist {
	for i := range l {
		l[i] -= prev[i]
	}
	return l
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed dispatch latency, at power-of-two resolution. It returns 0
// when the histogram is empty.
func (l LatencyHist) Quantile(q float64) time.Duration {
	total := l.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, v := range l {
		seen += v
		if seen >= rank {
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(uint64(1) << (latBuckets - 1))
}

// DispatchLatency snapshots the batched path's receive-to-worker latency
// histogram. Only batches carry latency stamps; the legacy per-packet
// Dispatch path does not contribute.
func (h *Hub) DispatchLatency() LatencyHist {
	var l LatencyHist
	for i := range l {
		l[i] = h.stats.latency[i].Load()
	}
	return l
}

// bumpPeak raises the peak-session mark to at least cur.
func (c *counters) bumpPeak(cur int64) {
	for {
		p := c.peak.Load()
		if cur <= p || c.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// Snapshot is a point-in-time view of the hub's counters.
type Snapshot struct {
	// ActiveSessions / PeakSessions count currently admitted sessions
	// and the high-water mark over the hub's lifetime.
	ActiveSessions int64
	PeakSessions   int64
	// Admitted / Rejected / Reaped / Ended count session lifecycle
	// events: hellos admitted, hellos refused with TypeBusy, sessions
	// evicted for idleness, and sessions that ended (Bye, reap or hub
	// shutdown).
	Admitted int64
	Rejected int64
	Reaped   int64
	Ended    int64
	// PacketsIn / PacketsOut / Strays / SendErrors count datagrams:
	// decoded arrivals, successful sends, packets for unknown sessions,
	// and failed sends.
	PacketsIn  int64
	PacketsOut int64
	Strays     int64
	SendErrors int64
	// Shed counts data-plane packets dropped by overload shedding
	// (their shard's queue was full); CtrlDropped counts control packets
	// dropped because a shard's control lane overflowed.
	Shed        int64
	CtrlDropped int64
	// Measurements / Actions / Resamples aggregate the per-session
	// estimator and compensator activity across all sessions ever hosted
	// (Resamples counts drift-regime rate retunes).
	Measurements int64
	Actions      int64
	Resamples    int64
}

// Stats returns a consistent-enough snapshot of the hub counters (each
// field is individually atomic; no lock is taken).
func (h *Hub) Stats() Snapshot {
	c := &h.stats
	return Snapshot{
		ActiveSessions: c.active.Load(),
		PeakSessions:   c.peak.Load(),
		Admitted:       c.admitted.Load(),
		Rejected:       c.rejected.Load(),
		Reaped:         c.reaped.Load(),
		Ended:          c.ended.Load(),
		PacketsIn:      c.packetsIn.Load(),
		PacketsOut:     c.packetsOut.Load(),
		Strays:         c.strays.Load(),
		SendErrors:     c.sendErrs.Load(),
		Shed:           c.shed.Load(),
		CtrlDropped:    c.ctrlDropped.Load(),
		Measurements:   c.measurements.Load(),
		Actions:        c.actions.Load(),
		Resamples:      c.resamples.Load(),
	}
}

// SessionStats snapshots every live session in the stable one-line-per-
// session format (trace.SessionStat). Snapshots are taken on the shard
// workers — the owners of session state — so the result is race-free;
// the call therefore waits briefly behind in-flight work. It returns nil
// after the hub has closed. Results are sorted by session ID, so live
// SIGHUP dumps and replay reports line up line for line.
func (h *Hub) SessionStats() []trace.SessionStat {
	ch := make(chan []trace.SessionStat, len(h.shards))
	asked := 0
	for _, sh := range h.shards {
		if h.enqueue(sh, work{kind: workStats, stats: ch}) {
			asked++
		}
	}
	var all []trace.SessionStat
	for i := 0; i < asked; i++ {
		select {
		case stats := <-ch:
			all = append(all, stats...)
		case <-h.done:
			return nil
		}
	}
	trace.SortSessionStats(all)
	return all
}

// String formats the snapshot as a one-line status report.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"sessions active=%d peak=%d admitted=%d rejected=%d reaped=%d ended=%d | packets in=%d out=%d strays=%d senderrs=%d shed=%d | measurements=%d actions=%d resamples=%d",
		s.ActiveSessions, s.PeakSessions, s.Admitted, s.Rejected, s.Reaped, s.Ended,
		s.PacketsIn, s.PacketsOut, s.Strays, s.SendErrors, s.Shed, s.Measurements, s.Actions, s.Resamples)
}
