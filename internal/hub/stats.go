package hub

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"ekho/internal/metrics"
	"ekho/internal/trace"
)

// latBuckets sizes the dispatch-latency histogram: bucket i counts
// packets whose receive-to-worker latency was in [2^(i-1), 2^i) ns, so
// the range spans 1 ns to ~9 s in powers of two.
const latBuckets = 34

// counters is the hub's always-on accounting: every field is a handle
// into the hub's metrics.Registry (resolved once at construction, so
// hot-path updates are single uncontended atomic adds — no lookups),
// which makes the registry the one source of truth behind Snapshot, the
// SIGHUP stat line and the /metrics endpoint alike.
type counters struct {
	reg *metrics.Registry

	active   *metrics.Gauge
	peak     *metrics.Gauge
	admitted *metrics.Counter
	rejected *metrics.Counter
	reaped   *metrics.Counter
	ended    *metrics.Counter

	packetsIn  *metrics.Counter
	packetsOut *metrics.Counter
	strays     *metrics.Counter
	sendErrs   *metrics.Counter

	measurements *metrics.Counter
	actions      *metrics.Counter
	resamples    *metrics.Counter

	// shed counts data-plane packets dropped because their shard's queue
	// was full (overload shedding); ctrlDropped counts control packets
	// dropped because a shard's control lane overflowed (pathological).
	shed        *metrics.Counter
	ctrlDropped *metrics.Counter

	// Marker plane: injections/matches/expiries across all sessions.
	injections *metrics.Counter
	matches    *metrics.Counter
	expired    *metrics.Counter

	// Chat uplink resequencing plane: conceals is the pipeline's gap
	// concealment, the reorder* counters are the jitterbuf.Reorder
	// stage's routing decisions.
	conceals       *metrics.Counter
	reordered      *metrics.Counter
	reorderLate    *metrics.Counter
	reorderDups    *metrics.Counter
	reorderFlushed *metrics.Counter

	// isdPeakMS tracks the fleet-wide peak |ISD| in milliseconds.
	isdPeakMS *metrics.FloatMax

	// latency is the packet-weighted dispatch-latency histogram, updated
	// once per processed batch by the shard workers. It stays a plain
	// atomic array (34 buckets would be 34 registry entries); /metrics
	// exports its quantiles through gauge functions instead. Held by
	// pointer so counters stays a plain copyable bag of handles.
	latency *[latBuckets]atomic.Int64
}

// newCounters resolves every hub metric in reg.
func newCounters(reg *metrics.Registry) counters {
	c := counters{
		reg:      reg,
		latency:  new([latBuckets]atomic.Int64),
		active:   reg.Gauge("ekho_sessions_active", "Currently admitted sessions."),
		peak:     reg.Gauge("ekho_sessions_peak", "High-water mark of concurrently admitted sessions."),
		admitted: reg.Counter("ekho_sessions_admitted_total", "Hellos admitted as new sessions."),
		rejected: reg.Counter("ekho_sessions_rejected_total", "Hellos refused with a busy reject."),
		reaped:   reg.Counter("ekho_sessions_reaped_total", "Sessions evicted for idleness."),
		ended:    reg.Counter("ekho_sessions_ended_total", "Sessions ended (bye, reap or shutdown)."),

		packetsIn:  reg.Counter("ekho_packets_in_total", "Decoded inbound datagrams."),
		packetsOut: reg.Counter("ekho_packets_out_total", "Successfully sent datagrams."),
		strays:     reg.Counter("ekho_packets_stray_total", "Datagrams for unknown sessions."),
		sendErrs:   reg.Counter("ekho_send_errors_total", "Failed datagram sends."),

		measurements: reg.Counter("ekho_isd_measurements_total", "ISD measurements across all sessions."),
		actions:      reg.Counter("ekho_compensation_actions_total", "Compensation actions across all sessions."),
		resamples:    reg.Counter("ekho_resamples_total", "Drift-regime resample retunes across all sessions."),

		shed:        reg.Counter("ekho_packets_shed_total", "Data-plane packets dropped by overload shedding."),
		ctrlDropped: reg.Counter("ekho_ctrl_dropped_total", "Control packets dropped on a full control lane."),

		injections: reg.Counter("ekho_markers_injected_total", "PN markers injected into screen streams."),
		matches:    reg.Counter("ekho_markers_matched_total", "PN markers matched in returned chat audio."),
		expired:    reg.Counter("ekho_markers_expired_total", "PN markers expired unmatched."),

		conceals:       reg.Counter("ekho_chat_conceals_total", "Chat sequence gaps concealed by the pipeline."),
		reordered:      reg.Counter("ekho_chat_reordered_total", "Out-of-order chat packets resequenced before the pipeline."),
		reorderLate:    reg.Counter("ekho_chat_reorder_late_total", "Chat packets dropped as too late to resequence."),
		reorderDups:    reg.Counter("ekho_chat_reorder_dup_total", "Duplicate chat packets dropped by the resequencer."),
		reorderFlushed: reg.Counter("ekho_chat_reorder_flushed_total", "Chat gaps abandoned because the reorder window filled."),

		isdPeakMS: reg.Max("ekho_isd_peak_abs_ms", "Peak |ISD| measured across the fleet, in milliseconds."),
	}
	reg.GaugeFunc("ekho_marker_match_rate", "Matched / injected marker ratio.", func() float64 {
		inj := c.injections.Load()
		if inj == 0 {
			return 0
		}
		return float64(c.matches.Load()) / float64(inj)
	})
	return c
}

// observeDispatch records one batch's receive-to-worker latency for all
// of its packets (one histogram update per batch, not per packet).
func (c *counters) observeDispatch(ns int64, packets int) {
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	c.latency[b].Add(int64(packets))
}

// LatencyHist is a point-in-time copy of the dispatch-latency histogram:
// bucket i counts packets whose latency was below 2^i ns.
type LatencyHist [latBuckets]int64

// Count returns the total number of packets observed.
func (l LatencyHist) Count() int64 {
	var n int64
	for _, v := range l {
		n += v
	}
	return n
}

// Sub returns the histogram of packets observed since prev.
func (l LatencyHist) Sub(prev LatencyHist) LatencyHist {
	for i := range l {
		l[i] -= prev[i]
	}
	return l
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed dispatch latency, at power-of-two resolution. It returns 0
// when the histogram is empty.
func (l LatencyHist) Quantile(q float64) time.Duration {
	total := l.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, v := range l {
		seen += v
		if seen >= rank {
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return time.Duration(uint64(1) << (latBuckets - 1))
}

// DispatchLatency snapshots the batched path's receive-to-worker latency
// histogram. Only batches carry latency stamps; the legacy per-packet
// Dispatch path does not contribute.
func (h *Hub) DispatchLatency() LatencyHist {
	var l LatencyHist
	for i := range l {
		l[i] = h.stats.latency[i].Load()
	}
	return l
}

// Metrics returns the hub's metric registry; cmd binaries mount it on
// an HTTP mux via RegisterAdmin, and embedders may add their own
// metrics to it.
func (h *Hub) Metrics() *metrics.Registry { return h.stats.reg }

// Snapshot is a point-in-time view of the hub's counters.
type Snapshot struct {
	// ActiveSessions / PeakSessions count currently admitted sessions
	// and the high-water mark over the hub's lifetime.
	ActiveSessions int64
	PeakSessions   int64
	// Admitted / Rejected / Reaped / Ended count session lifecycle
	// events: hellos admitted, hellos refused with TypeBusy, sessions
	// evicted for idleness, and sessions that ended (Bye, reap or hub
	// shutdown).
	Admitted int64
	Rejected int64
	Reaped   int64
	Ended    int64
	// PacketsIn / PacketsOut / Strays / SendErrors count datagrams:
	// decoded arrivals, successful sends, packets for unknown sessions,
	// and failed sends.
	PacketsIn  int64
	PacketsOut int64
	Strays     int64
	SendErrors int64
	// Shed counts data-plane packets dropped by overload shedding
	// (their shard's queue was full); CtrlDropped counts control packets
	// dropped because a shard's control lane overflowed.
	Shed        int64
	CtrlDropped int64
	// Measurements / Actions / Resamples aggregate the per-session
	// estimator and compensator activity across all sessions ever hosted
	// (Resamples counts drift-regime rate retunes).
	Measurements int64
	Actions      int64
	Resamples    int64
}

// Stats returns a consistent-enough snapshot of the hub counters (each
// field is individually atomic; no lock is taken). It is a thin read of
// the metrics registry — the same numbers /metrics serves.
func (h *Hub) Stats() Snapshot {
	c := &h.stats
	return Snapshot{
		ActiveSessions: c.active.Load(),
		PeakSessions:   c.peak.Load(),
		Admitted:       c.admitted.Load(),
		Rejected:       c.rejected.Load(),
		Reaped:         c.reaped.Load(),
		Ended:          c.ended.Load(),
		PacketsIn:      c.packetsIn.Load(),
		PacketsOut:     c.packetsOut.Load(),
		Strays:         c.strays.Load(),
		SendErrors:     c.sendErrs.Load(),
		Shed:           c.shed.Load(),
		CtrlDropped:    c.ctrlDropped.Load(),
		Measurements:   c.measurements.Load(),
		Actions:        c.actions.Load(),
		Resamples:      c.resamples.Load(),
	}
}

// SessionInfo is the rich per-session snapshot served by the /sessions
// admin endpoint: the stable stat-line fields plus wire codec, marker
// and conceal counters, resequencer activity and the session's last and
// peak ISD.
type SessionInfo struct {
	ID           uint32  `json:"id"`
	Wire         string  `json:"wire"`
	Frames       int     `json:"frames"`
	Measurements int     `json:"measurements"`
	Actions      int     `json:"actions"`
	Pending      int     `json:"pending_markers"`
	Records      int     `json:"playback_records"`
	Resamples    int     `json:"resamples"`
	Injected     int     `json:"markers_injected"`
	Matched      int     `json:"markers_matched"`
	Expired      int     `json:"markers_expired"`
	Conceals     int     `json:"chat_conceals"`
	ISDLastMS    float64 `json:"isd_last_ms"`
	ISDPeakAbsMS float64 `json:"isd_peak_abs_ms"`
	ReorderHeld  uint64  `json:"chat_reordered"`
	ReorderLate  uint64  `json:"chat_reorder_late"`
	ReorderDups  uint64  `json:"chat_reorder_dups"`
	GapsFlushed  uint64  `json:"chat_reorder_flushed"`
}

// SessionInfos snapshots every live session. Snapshots are taken on the
// shard workers — the owners of session state — so the result is
// race-free; the call therefore waits briefly behind in-flight work. It
// returns nil after the hub has closed. Results are sorted by session
// ID.
func (h *Hub) SessionInfos() []SessionInfo {
	ch := make(chan []SessionInfo, len(h.shards))
	asked := 0
	for _, sh := range h.shards {
		if h.enqueue(sh, work{kind: workStats, stats: ch}) {
			asked++
		}
	}
	var all []SessionInfo
	for i := 0; i < asked; i++ {
		select {
		case infos := <-ch:
			all = append(all, infos...)
		case <-h.done:
			return nil
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// SessionStats snapshots every live session in the stable one-line-per-
// session format (trace.SessionStat): a thin projection of SessionInfos,
// so live SIGHUP dumps and replay reports line up line for line.
func (h *Hub) SessionStats() []trace.SessionStat {
	infos := h.SessionInfos()
	stats := make([]trace.SessionStat, len(infos))
	for i, in := range infos {
		stats[i] = trace.SessionStat{
			ID:           in.ID,
			Frames:       in.Frames,
			Measurements: in.Measurements,
			Actions:      in.Actions,
			Pending:      in.Pending,
			Records:      in.Records,
			Resamples:    in.Resamples,
		}
	}
	return stats
}

// String formats the snapshot as a one-line status report.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"sessions active=%d peak=%d admitted=%d rejected=%d reaped=%d ended=%d | packets in=%d out=%d strays=%d senderrs=%d shed=%d | measurements=%d actions=%d resamples=%d",
		s.ActiveSessions, s.PeakSessions, s.Admitted, s.Rejected, s.Reaped, s.Ended,
		s.PacketsIn, s.PacketsOut, s.Strays, s.SendErrors, s.Shed, s.Measurements, s.Actions, s.Resamples)
}
