package hub

import (
	"sync"
	"time"

	"ekho/internal/metrics"
	"ekho/internal/transport"
)

// ctrlDepth bounds each shard's control lane. Control packets are rare
// (a few per session lifetime), so this only fills when a shard is
// wedged while a client retries hellos — at which point dropping them is
// the UDP-shaped answer.
const ctrlDepth = 64

// A shard owns a stripe of the session registry plus the single worker
// goroutine that executes all DSP and compensation for its sessions.
// Sessions are pinned to shards by ID hash, so two sessions on different
// shards never contend on a lock or serialize behind each other's
// estimator work; within a shard the worker provides the serialization
// that the per-session pipeline state requires.
type shard struct {
	mu       sync.Mutex
	sessions map[uint32]*session
	// queue carries the data plane: batches of packets, ticks, reap
	// probes. When it is full, new data packets for this shard are shed.
	queue chan work
	// ctrl carries Hello/Bye packets with priority over queued data, so
	// session control survives data-plane overload.
	ctrl chan work
	// scratch is the worker-owned reusable slice for tick fan-out.
	scratch []*session
	// egress queues this shard's outbound datagrams during a work item;
	// the worker flushes it through SendBatch once per batch/tick.
	egress []transport.Packet
	// cPackets / cShed / cSessions are this shard's labeled registry
	// metrics (`{shard="i"}`), updated once per sub-batch so the /metrics
	// per-shard breakdown costs one atomic per shard per receive batch.
	cPackets  *metrics.Counter
	cShed     *metrics.Counter
	cSessions *metrics.Gauge
}

type workKind uint8

const (
	workPacket workKind = iota
	workBatch
	workTick
	workReap
	workStats
)

// work is one unit handed to a shard worker: a batch of packets (the
// batched receive path), a single packet (control lane and the
// per-packet fallback), a media tick for every session in the shard, or
// a reap probe.
type work struct {
	kind workKind
	msg  transport.Message
	s    *session
	// items/arena/stamp carry a receive sub-batch: the packets, the
	// arena to release afterwards, and the dispatch time (UnixNano) that
	// feeds the dispatch-latency histogram.
	items []packetWork
	arena *recvArena
	stamp int64
	// id/seen carry the reap probe: the session to evict and the
	// lastActive value the reaper observed (the eviction is aborted if a
	// packet arrived in between).
	id   uint32
	seen int64
	// stats receives the shard's per-session snapshots (workStats): the
	// worker owns session state, so snapshots are taken on it and the
	// requester waits on this channel.
	stats chan<- []SessionInfo
}

// shardIndex pins a session ID to a shard. Session IDs are arbitrary
// client-chosen u32s, so mix the bits before reducing.
func shardIndex(id uint32, shards int) int {
	h := id
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	return int(h % uint32(shards))
}

// lookup returns the session currently registered under id, or nil.
func (sh *shard) lookup(id uint32) *session {
	sh.mu.Lock()
	s := sh.sessions[id]
	sh.mu.Unlock()
	return s
}

// insert registers a session; it reports false if the id is taken.
func (sh *shard) insert(s *session) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.sessions[s.id]; ok {
		return false
	}
	sh.sessions[s.id] = s
	return true
}

// enqueue hands work to the shard's worker, blocking if the queue is
// full (backpressure: the UDP socket buffer is the drop point, not a
// user-space queue). It reports false if the hub shut down instead.
func (h *Hub) enqueue(sh *shard, w work) bool {
	select {
	case sh.queue <- w:
		return true
	case <-h.done:
		return false
	}
}

// worker runs a shard's processing loop until the hub closes. Control
// work is polled first each round so Hello/Bye overtake queued data
// batches when both are pending.
func (h *Hub) worker(sh *shard) {
	defer h.wg.Done()
	for {
		select {
		case w := <-sh.ctrl:
			h.process(sh, w)
			continue
		default:
		}
		select {
		case <-h.done:
			return
		case w := <-sh.ctrl:
			h.process(sh, w)
		case w := <-sh.queue:
			h.process(sh, w)
		}
	}
}

// process executes one work item on the shard worker and flushes any
// egress it queued.
func (h *Hub) process(sh *shard, w work) {
	switch w.kind {
	case workPacket:
		if done := w.s.handle(&w.msg); done {
			h.remove(sh, w.s, false)
		}
	case workBatch:
		h.stats.observeDispatch(time.Now().UnixNano()-w.stamp, len(w.items))
		for _, pw := range w.items {
			if done := pw.s.handle(pw.m); done {
				h.remove(sh, pw.s, false)
			}
		}
		w.arena.release()
	case workTick:
		sh.mu.Lock()
		sh.scratch = sh.scratch[:0]
		for _, s := range sh.sessions {
			sh.scratch = append(sh.scratch, s)
		}
		sh.mu.Unlock()
		for _, s := range sh.scratch {
			s.tick()
		}
	case workReap:
		s := sh.lookup(w.id)
		if s != nil && s.lastActive.Load() == w.seen {
			h.remove(sh, s, true)
		}
	case workStats:
		sh.mu.Lock()
		sh.scratch = sh.scratch[:0]
		for _, s := range sh.sessions {
			sh.scratch = append(sh.scratch, s)
		}
		sh.mu.Unlock()
		infos := make([]SessionInfo, 0, len(sh.scratch))
		for _, s := range sh.scratch {
			infos = append(infos, s.info())
		}
		w.stats <- infos
	}
	h.flushEgress(sh)
}

// flushEgress transmits the shard's queued outbound datagrams: one
// SendBatch on the batched path, a SendTo loop on the fallback. Called
// only on the shard's worker, after which the sessions' packet buffers
// are free to be reused.
func (h *Hub) flushEgress(sh *shard) {
	if len(sh.egress) == 0 {
		return
	}
	if h.bconn != nil {
		sent, _ := h.bconn.SendBatch(sh.egress)
		h.stats.packetsOut.Add(int64(sent))
		h.stats.sendErrs.Add(int64(len(sh.egress) - sent))
	} else {
		for i := range sh.egress {
			h.send(sh.egress[i].Buf, sh.egress[i].To)
		}
	}
	sh.egress = sh.egress[:0]
}

// remove unregisters a session and emits its result. Called only from
// the shard's worker (or from shutdown after workers stopped), so the
// session's pipeline state is quiescent.
func (h *Hub) remove(sh *shard, s *session, reaped bool) {
	sh.mu.Lock()
	cur, ok := sh.sessions[s.id]
	if ok && cur == s {
		delete(sh.sessions, s.id)
	}
	sh.mu.Unlock()
	if !ok || cur != s {
		return
	}
	h.stats.active.Add(-1)
	sh.cSessions.Add(-1)
	h.stats.ended.Add(1)
	if reaped {
		h.stats.reaped.Add(1)
		h.logf("hub: session %d reaped after idle timeout", s.id)
	}
	s.closeRecorder()
	if h.cfg.OnSessionEnd != nil {
		h.cfg.OnSessionEnd(s.id, s.result())
	}
}
