// Package hub implements Ekho's multi-tenant session control plane: one
// server process hosting many concurrent, fully independent Ekho
// sessions (each with its own PN schedule, estimator, compensator and
// stream schedulers) behind a single UDP socket.
//
// Architecture:
//
//   - the receive loop decodes datagrams (native v2 framing or RTP via
//     a pluggable transport.Decoder — see internal/rtp) and
//     demultiplexes them by session ID onto a sharded session registry:
//     per-shard mutex + map, sessions pinned to shards by ID hash; each
//     session replies in whatever framing its Hello arrived in;
//   - each shard has one worker goroutine that executes all packet
//     handling, DSP and compensation for its sessions, so different
//     sessions never contend on one lock and per-session pipeline state
//     needs no locking at all;
//   - admission control caps concurrent sessions (rejecting extra
//     hellos with TypeBusy), idle sessions are reaped after a timeout,
//     and Drain stops admissions while in-flight sessions finish;
//   - every counter lives in a metrics.Registry (see internal/metrics),
//     so the lock-free stats Snapshot, the /metrics Prometheus endpoint
//     and the /sessions JSON endpoint (RegisterAdmin) all read the same
//     numbers.
//
// The single-session demo server (internal/live.RunServer) is a
// capacity-1 hub; cmd/ekho-server runs an unrestricted one.
package hub

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
	"ekho/internal/metrics"
	"ekho/internal/rtp"
	"ekho/internal/transport"
)

// Logf is a printf-style sink for hub progress output.
type Logf func(format string, args ...any)

// Conn is the datagram endpoint a hub serves on. *transport.Conn
// implements it; tests and benchmarks substitute an in-process loopback
// network (NewMemNet).
type Conn interface {
	Recv(deadline time.Time) (transport.Message, error)
	SendTo(b []byte, to net.Addr) error
	LocalAddr() net.Addr
	Close() error
}

// BatchConn is the batched wire seam: a Conn that can drain a burst of
// datagrams per wakeup and flush a burst of sends per call. When the
// hub's Conn implements it (both *transport.Conn and MemNet endpoints
// do), the whole receive→dispatch→process→send path runs batched:
// packet arenas amortize decoding, shard workers wake once per batch,
// and per-shard egress queues flush through SendBatch. A plain Conn
// falls back to the per-packet path.
//
// RecvBatch fills msgs with one blocking read (until deadline) followed
// by greedy reads until the socket runs dry or the batch fills, reusing
// each slot's payload capacity (transport.DecodeInto). From may be nil
// for data-plane packets; it must be set for Hello and Bye. SendBatch
// attempts every packet and reports how many were sent plus the first
// error.
type BatchConn interface {
	Conn
	RecvBatch(deadline time.Time, msgs []transport.Message) (int, error)
	SendBatch(pkts []transport.Packet) (int, error)
}

// Config tunes a hub. The zero value serves 64 sessions on 8 shards
// with the paper's session parameters.
type Config struct {
	// Capacity caps concurrently admitted sessions (default 64).
	Capacity int
	// Shards sets the registry stripe / worker goroutine count
	// (default 8).
	Shards int
	// QueueDepth bounds each shard's work queue (default 256 entries;
	// one entry is a whole receive sub-batch, not a packet). When a
	// shard's queue is full, incoming data-plane packets for it are shed
	// (counted in Snapshot.Shed) instead of blocking the receive loop.
	QueueDepth int
	// TickEvery paces media frames (default 20 ms, the wire frame
	// duration). Negative disables the internal ticker: the caller
	// drives pacing via Tick, which is how tests run faster than
	// wall-clock real time.
	TickEvery time.Duration
	// IdleTimeout evicts sessions with no inbound packets (default
	// 30 s). Negative disables reaping.
	IdleTimeout time.Duration
	// MarkerC is the relative marker volume (0 = paper default).
	MarkerC float64
	// Clip selects the corpus clip every session streams.
	Clip int
	// Seed is the PN marker sequence seed (0 = 4242, the demo seed).
	Seed int64
	// Codec is the chat uplink profile (zero value = SWB32).
	Codec codec.Profile
	// Compensator tunes the per-session feedback loop.
	Compensator ekho.CompensatorConfig
	// Detector selects each session's marker-detection pipeline (zero
	// value = the band-decimated two-stage detector).
	Detector ekho.DetectorMode
	// RecordDir, when non-empty, captures every session's full timeline
	// to <RecordDir>/session-<id>.ektrace for deterministic replay with
	// cmd/ekho-replay (see internal/trace).
	RecordDir string
	// Metrics is the registry the hub publishes its counters into (nil =
	// a private registry; read it back with Hub.Metrics). Sharing one
	// registry lets an embedder co-host its own metrics on the same
	// /metrics endpoint.
	Metrics *metrics.Registry
	// Logf receives progress lines (nil silences them).
	Logf Logf
	// OnSessionReady fires (from a shard worker) when a session's
	// screen and controller have both joined and streaming starts.
	OnSessionReady func(id uint32)
	// OnSessionEnd fires when a session is removed (bye, reap or hub
	// shutdown) with its final result.
	OnSessionEnd func(id uint32, r SessionResult)
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.TickEvery == 0 {
		c.TickEvery = 20 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.MarkerC == 0 {
		c.MarkerC = ekho.DefaultMarkerVolume
	}
	if c.Seed == 0 {
		c.Seed = 4242
	}
	if c.Codec.Name == "" {
		c.Codec = codec.SWB32
	}
	return c
}

// Hub is a multi-tenant Ekho session server.
type Hub struct {
	cfg    Config
	conn   Conn
	bconn  BatchConn // non-nil when conn supports batched I/O
	shards []*shard
	stats  counters

	// arenaFree recycles receive batch arenas between the receive loop
	// and the shard workers (batched path only).
	arenaFree chan *recvArena

	// coarse is the hub's coarse wall clock (UnixNano), refreshed once
	// per receive batch, media tick and reap probe instead of per packet.
	// lastActive stamps and the reap cutoff read it, trading per-packet
	// time.Now() calls for at most one reap-probe interval of slack.
	coarse atomic.Int64

	draining atomic.Bool
	served   atomic.Bool
	done     chan struct{}
	closing  sync.Once
	wg       sync.WaitGroup

	clipMu sync.Mutex
	clips  map[int]*audio.Buffer
	seqOne sync.Once
	seq    *ekho.MarkerSequence
}

// New returns a hub serving on conn. Call Serve to start it.
func New(cfg Config, conn Conn) *Hub {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	h := &Hub{
		cfg:   cfg,
		conn:  conn,
		stats: newCounters(reg),
		done:  make(chan struct{}),
		clips: make(map[int]*audio.Buffer),
	}
	h.bconn, _ = conn.(BatchConn)
	h.coarse.Store(time.Now().UnixNano())
	h.shards = make([]*shard, cfg.Shards)
	for i := range h.shards {
		h.shards[i] = &shard{
			sessions: make(map[uint32]*session),
			queue:    make(chan work, cfg.QueueDepth),
			ctrl:     make(chan work, ctrlDepth),
			cPackets: reg.Counter(fmt.Sprintf(`ekho_shard_packets_total{shard="%d"}`, i),
				"Data-plane packets enqueued per shard."),
			cShed: reg.Counter(fmt.Sprintf(`ekho_shard_shed_total{shard="%d"}`, i),
				"Data-plane packets shed per shard."),
			cSessions: reg.Gauge(fmt.Sprintf(`ekho_shard_sessions{shard="%d"}`, i),
				"Live sessions pinned per shard."),
		}
	}
	reg.GaugeFunc("ekho_dispatch_p50_ms", "Median batched dispatch latency (power-of-two resolution).",
		func() float64 { return float64(h.DispatchLatency().Quantile(0.50)) / 1e6 })
	reg.GaugeFunc("ekho_dispatch_p99_ms", "99th percentile batched dispatch latency (power-of-two resolution).",
		func() float64 { return float64(h.DispatchLatency().Quantile(0.99)) / 1e6 })
	h.arenaFree = make(chan *recvArena, numArenas)
	for i := 0; i < numArenas; i++ {
		h.arenaFree <- newRecvArena(h)
	}
	return h
}

func (h *Hub) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

func (h *Hub) codecProfile() codec.Profile { return h.cfg.Codec }

// clip returns the (cached) game-audio buffer for a corpus index; all
// sessions share one read-only buffer so admission cost stays flat.
func (h *Hub) clip(idx int) *audio.Buffer {
	h.clipMu.Lock()
	defer h.clipMu.Unlock()
	if b, ok := h.clips[idx]; ok {
		return b
	}
	b := gamesynth.Generate(gamesynth.Catalog()[idx%len(gamesynth.Catalog())], gamesynth.ClipSeconds)
	h.clips[idx] = b
	return b
}

// markerSeq returns the shared, read-only PN marker template.
func (h *Hub) markerSeq() *ekho.MarkerSequence {
	h.seqOne.Do(func() { h.seq = ekho.NewMarkerSequence(h.cfg.Seed) })
	return h.seq
}

// Serve runs the hub until Close: it starts the shard workers, the media
// ticker and the idle reaper, then demultiplexes inbound datagrams in
// the calling goroutine. It returns nil after a clean Close and the
// socket error otherwise. Serve may be called once.
func (h *Hub) Serve() error {
	if !h.served.CompareAndSwap(false, true) {
		return errors.New("hub: Serve called twice")
	}
	for _, sh := range h.shards {
		h.wg.Add(1)
		go h.worker(sh)
	}
	if h.cfg.TickEvery > 0 {
		h.wg.Add(1)
		go h.tickLoop()
	}
	if h.cfg.IdleTimeout > 0 {
		h.wg.Add(1)
		go h.reapLoop()
	}
	h.logf("hub: serving on %s (capacity %d, %d shards, batched=%v)",
		h.conn.LocalAddr(), h.cfg.Capacity, h.cfg.Shards, h.bconn != nil)

	var err error
	if h.bconn != nil {
		err = h.recvLoopBatch()
	} else {
		err = h.recvLoop()
	}
	h.Close()
	h.wg.Wait()
	h.flushSessions()
	return err
}

// recvLoop reads and dispatches datagrams one at a time until the hub
// closes: the fallback path for plain Conns. Socket errors other than
// shutdown and deadline expiry are propagated.
func (h *Hub) recvLoop() error {
	for {
		msg, err := h.conn.Recv(time.Now().Add(time.Second))
		if err != nil {
			if h.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			if isTimeout(err) {
				h.coarse.Store(time.Now().UnixNano())
				continue
			}
			return fmt.Errorf("hub: receive: %w", err)
		}
		if h.isClosed() {
			return nil
		}
		h.coarse.Store(time.Now().UnixNano())
		h.Dispatch(msg)
	}
}

// recvLoopBatch drains the socket in batches: each wakeup fills a packet
// arena, then hands every shard its sub-batch in one queue operation.
func (h *Hub) recvLoopBatch() error {
	for {
		a := h.takeArena()
		if a == nil {
			return nil // hub closed while all arenas were in flight
		}
		n, err := h.bconn.RecvBatch(time.Now().Add(time.Second), a.msgs)
		if err != nil && n == 0 {
			h.arenaFree <- a
			if h.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			if isTimeout(err) {
				h.coarse.Store(time.Now().UnixNano())
				continue
			}
			return fmt.Errorf("hub: receive: %w", err)
		}
		if h.isClosed() {
			h.arenaFree <- a
			return nil
		}
		h.dispatchArena(a, n)
	}
}

// Dispatch routes one decoded datagram to its session's shard worker,
// admitting the session first if the packet is a Hello. It is normally
// called only by the per-packet fallback receive loop; it is exported
// for benchmarks and tests that drive the hub without a socket.
func (h *Hub) Dispatch(msg transport.Message) {
	h.stats.packetsIn.Add(1)
	sh := h.shards[shardIndex(msg.Session, len(h.shards))]
	s := h.route(sh, &msg)
	if s == nil {
		return
	}
	s.lastActive.Store(h.coarse.Load())
	sh.cPackets.Inc()
	h.enqueue(sh, work{kind: workPacket, msg: msg, s: s})
}

// route resolves a packet to its session, admitting on Hello and
// counting strays. It returns nil when the packet needs no worker.
func (h *Hub) route(sh *shard, msg *transport.Message) *session {
	s := sh.lookup(msg.Session)
	if s == nil {
		if msg.Type != transport.TypeHello {
			h.stats.strays.Add(1)
			return nil
		}
		if s = h.admit(sh, *msg); s == nil {
			return nil
		}
	}
	return s
}

// DispatchBatch routes a batch of decoded datagrams with the batched
// path's cost profile: one stats update, one coarse-clock read and one
// queue operation per shard sub-batch. The messages' struct fields are
// copied into an arena, but their backing arrays are shared with the
// caller until the workers finish the batch — like Dispatch, this is
// exported for benchmarks, tests and harnesses driving a hub without a
// socket, which own that lifetime.
func (h *Hub) DispatchBatch(msgs []transport.Message) {
	for len(msgs) > 0 {
		a := h.takeArena()
		if a == nil {
			return
		}
		n := copy(a.msgs, msgs)
		msgs = msgs[n:]
		h.dispatchArena(a, n)
	}
}

// dispatchArena routes the first n decoded messages of an arena: data
// packets are staged into per-shard sub-batches delivered with one
// channel send each; control packets (Hello/Bye) travel on the shard's
// control lane so they survive data-plane overload. When a shard's
// queue is full its sub-batch is shed instead of blocking the receive
// loop: one slow shard drops its own media, not everyone's.
func (h *Hub) dispatchArena(a *recvArena, n int) {
	now := time.Now().UnixNano()
	h.coarse.Store(now)
	h.stats.packetsIn.Add(int64(n))
	a.pending.Store(1) // dispatch hold
	for i := range a.msgs[:n] {
		msg := &a.msgs[i]
		si := shardIndex(msg.Session, len(h.shards))
		sh := h.shards[si]
		s := h.route(sh, msg)
		if s == nil {
			continue
		}
		s.lastActive.Store(now)
		switch msg.Type {
		case transport.TypeHello, transport.TypeBye:
			// Control lane: a struct copy (control packets carry no
			// payload slices), so delivery never pins the arena.
			select {
			case sh.ctrl <- work{kind: workPacket, msg: *msg, s: s}:
			default:
				h.stats.ctrlDropped.Add(1)
			}
		default:
			a.perShard[si] = append(a.perShard[si], packetWork{m: msg, s: s})
		}
	}
	for si, items := range a.perShard {
		if len(items) == 0 {
			continue
		}
		sh := h.shards[si]
		a.pending.Add(1)
		select {
		case sh.queue <- work{kind: workBatch, items: items, arena: a, stamp: now}:
			sh.cPackets.Add(int64(len(items)))
		default:
			// Overload: shed this shard's data sub-batch.
			h.stats.shed.Add(int64(len(items)))
			sh.cShed.Add(int64(len(items)))
			a.perShard[si] = items[:0]
			a.pending.Add(-1)
		}
	}
	a.release() // drop the dispatch hold
}

// wireEncoder maps a session's latched wire framing onto the shared
// stateless encoder for it. Both encoders are zero-size values, so the
// interface conversion never allocates.
func wireEncoder(w transport.Wire) transport.WireEncoder {
	if w == transport.WireRTP {
		return rtp.Encoder{}
	}
	return transport.V2{}
}

// admit applies admission control for a first Hello. It returns the new
// session, or nil after sending a TypeBusy reject. The session's wire
// codec is latched from the Hello's framing: every packet the hub sends
// to this session uses the framing the client helloed in.
func (h *Hub) admit(sh *shard, msg transport.Message) *session {
	active := h.stats.active.Load()
	if h.draining.Load() || active >= int64(h.cfg.Capacity) {
		h.stats.rejected.Add(1)
		busy := wireEncoder(msg.Wire).AppendBusy(nil, transport.Busy{
			Session:  msg.Session,
			Active:   uint32(active),
			Capacity: uint32(h.cfg.Capacity),
		})
		h.send(busy, msg.From)
		h.logf("hub: session %d rejected busy (active %d / capacity %d, draining=%v)",
			msg.Session, active, h.cfg.Capacity, h.draining.Load())
		return nil
	}
	s := h.newSession(sh, msg.Session, msg.Wire)
	if !sh.insert(s) {
		// Lost a (benchmark-only) race with another dispatcher; use the
		// session that won.
		return sh.lookup(msg.Session)
	}
	cur := h.stats.active.Add(1)
	sh.cSessions.Add(1)
	h.stats.peak.BumpMax(cur)
	h.stats.admitted.Add(1)
	h.logf("hub: session %d admitted (%d active, wire %v)", msg.Session, cur, msg.Wire)
	return s
}

// Tick advances every session by one 20 ms media frame. The internal
// ticker calls it when TickEvery > 0; tests drive it directly to run
// faster than real time. Enqueueing blocks when a shard worker is
// saturated, so pacing degrades gracefully instead of queueing
// unboundedly.
func (h *Hub) Tick() {
	h.coarse.Store(time.Now().UnixNano())
	for _, sh := range h.shards {
		h.enqueue(sh, work{kind: workTick})
	}
}

func (h *Hub) tickLoop() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			h.Tick()
		}
	}
}

// reapLoop periodically probes for idle sessions. Eviction happens on
// the shard worker (a reap work item) so session state stays
// single-threaded; the probe carries the observed lastActive and the
// worker aborts the eviction if traffic arrived in between.
func (h *Hub) reapLoop() {
	defer h.wg.Done()
	every := h.cfg.IdleTimeout / 4
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			// Refresh the coarse clock at the probe so lastActive stamps
			// written from here on are at least probe-fresh; the stamp
			// slack is therefore bounded by one probe interval, a
			// quarter of the timeout being enforced.
			now := time.Now().UnixNano()
			h.coarse.Store(now)
			cutoff := now - h.cfg.IdleTimeout.Nanoseconds()
			for _, sh := range h.shards {
				var stale []work
				sh.mu.Lock()
				for id, s := range sh.sessions {
					if last := s.lastActive.Load(); last < cutoff {
						stale = append(stale, work{kind: workReap, id: id, seen: last})
					}
				}
				sh.mu.Unlock()
				for _, w := range stale {
					h.enqueue(sh, w)
				}
			}
		}
	}
}

// Drain stops admitting new sessions (hellos are rejected with
// TypeBusy) while in-flight sessions keep streaming.
func (h *Hub) Drain() {
	if h.draining.CompareAndSwap(false, true) {
		h.logf("hub: draining: no new sessions admitted")
	}
}

// Shutdown drains the hub, waits up to grace for in-flight sessions to
// finish (Bye or idle reap), then closes it.
func (h *Hub) Shutdown(grace time.Duration) {
	h.Drain()
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) && h.stats.active.Load() > 0 {
		time.Sleep(20 * time.Millisecond)
	}
	h.Close()
}

// Close stops the hub: workers, ticker and reaper exit, the socket is
// closed, and Serve returns after emitting OnSessionEnd for every
// session still registered.
func (h *Hub) Close() {
	h.closing.Do(func() {
		close(h.done)
		_ = h.conn.Close()
	})
}

func (h *Hub) isClosed() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// flushSessions emits results for sessions still registered at
// shutdown. Workers have already stopped, so session state is
// quiescent.
func (h *Hub) flushSessions() {
	for _, sh := range h.shards {
		sh.mu.Lock()
		ss := make([]*session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			ss = append(ss, s)
		}
		sh.sessions = make(map[uint32]*session)
		sh.mu.Unlock()
		for _, s := range ss {
			h.stats.active.Add(-1)
			sh.cSessions.Add(-1)
			h.stats.ended.Add(1)
			s.closeRecorder()
			if h.cfg.OnSessionEnd != nil {
				h.cfg.OnSessionEnd(s.id, s.result())
			}
		}
	}
}

// send transmits one encoded datagram, counting outcomes.
func (h *Hub) send(b []byte, to net.Addr) {
	if to == nil {
		return
	}
	if err := h.conn.SendTo(b, to); err != nil {
		h.stats.sendErrs.Add(1)
		return
	}
	h.stats.packetsOut.Add(1)
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
