// Package hub implements Ekho's multi-tenant session control plane: one
// server process hosting many concurrent, fully independent Ekho
// sessions (each with its own PN schedule, estimator, compensator and
// stream schedulers) behind a single UDP socket.
//
// Architecture:
//
//   - the receive loop decodes datagrams and demultiplexes them by the
//     wire header's session ID (transport protocol v2) onto a sharded
//     session registry: per-shard mutex + map, sessions pinned to shards
//     by ID hash;
//   - each shard has one worker goroutine that executes all packet
//     handling, DSP and compensation for its sessions, so different
//     sessions never contend on one lock and per-session pipeline state
//     needs no locking at all;
//   - admission control caps concurrent sessions (rejecting extra
//     hellos with TypeBusy), idle sessions are reaped after a timeout,
//     and Drain stops admissions while in-flight sessions finish;
//   - atomic counters expose a lock-free stats Snapshot.
//
// The single-session demo server (internal/live.RunServer) is a
// capacity-1 hub; cmd/ekho-server runs an unrestricted one.
package hub

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/gamesynth"
	"ekho/internal/transport"
)

// Logf is a printf-style sink for hub progress output.
type Logf func(format string, args ...any)

// Conn is the datagram endpoint a hub serves on. *transport.Conn
// implements it; tests and benchmarks substitute an in-process loopback
// network (NewMemNet).
type Conn interface {
	Recv(deadline time.Time) (transport.Message, error)
	SendTo(b []byte, to net.Addr) error
	LocalAddr() net.Addr
	Close() error
}

// Config tunes a hub. The zero value serves 64 sessions on 8 shards
// with the paper's session parameters.
type Config struct {
	// Capacity caps concurrently admitted sessions (default 64).
	Capacity int
	// Shards sets the registry stripe / worker goroutine count
	// (default 8).
	Shards int
	// TickEvery paces media frames (default 20 ms, the wire frame
	// duration). Negative disables the internal ticker: the caller
	// drives pacing via Tick, which is how tests run faster than
	// wall-clock real time.
	TickEvery time.Duration
	// IdleTimeout evicts sessions with no inbound packets (default
	// 30 s). Negative disables reaping.
	IdleTimeout time.Duration
	// MarkerC is the relative marker volume (0 = paper default).
	MarkerC float64
	// Clip selects the corpus clip every session streams.
	Clip int
	// Seed is the PN marker sequence seed (0 = 4242, the demo seed).
	Seed int64
	// Codec is the chat uplink profile (zero value = SWB32).
	Codec codec.Profile
	// Compensator tunes the per-session feedback loop.
	Compensator ekho.CompensatorConfig
	// RecordDir, when non-empty, captures every session's full timeline
	// to <RecordDir>/session-<id>.ektrace for deterministic replay with
	// cmd/ekho-replay (see internal/trace).
	RecordDir string
	// Logf receives progress lines (nil silences them).
	Logf Logf
	// OnSessionReady fires (from a shard worker) when a session's
	// screen and controller have both joined and streaming starts.
	OnSessionReady func(id uint32)
	// OnSessionEnd fires when a session is removed (bye, reap or hub
	// shutdown) with its final result.
	OnSessionEnd func(id uint32, r SessionResult)
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.TickEvery == 0 {
		c.TickEvery = 20 * time.Millisecond
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.MarkerC == 0 {
		c.MarkerC = ekho.DefaultMarkerVolume
	}
	if c.Seed == 0 {
		c.Seed = 4242
	}
	if c.Codec.Name == "" {
		c.Codec = codec.SWB32
	}
	return c
}

// Hub is a multi-tenant Ekho session server.
type Hub struct {
	cfg    Config
	conn   Conn
	shards []*shard
	stats  counters

	draining atomic.Bool
	served   atomic.Bool
	done     chan struct{}
	closing  sync.Once
	wg       sync.WaitGroup

	clipMu sync.Mutex
	clips  map[int]*audio.Buffer
	seqOne sync.Once
	seq    *ekho.MarkerSequence
}

// New returns a hub serving on conn. Call Serve to start it.
func New(cfg Config, conn Conn) *Hub {
	cfg = cfg.withDefaults()
	h := &Hub{
		cfg:   cfg,
		conn:  conn,
		done:  make(chan struct{}),
		clips: make(map[int]*audio.Buffer),
	}
	h.shards = make([]*shard, cfg.Shards)
	for i := range h.shards {
		h.shards[i] = &shard{
			sessions: make(map[uint32]*session),
			queue:    make(chan work, 256),
		}
	}
	return h
}

func (h *Hub) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

func (h *Hub) codecProfile() codec.Profile { return h.cfg.Codec }

// clip returns the (cached) game-audio buffer for a corpus index; all
// sessions share one read-only buffer so admission cost stays flat.
func (h *Hub) clip(idx int) *audio.Buffer {
	h.clipMu.Lock()
	defer h.clipMu.Unlock()
	if b, ok := h.clips[idx]; ok {
		return b
	}
	b := gamesynth.Generate(gamesynth.Catalog()[idx%len(gamesynth.Catalog())], gamesynth.ClipSeconds)
	h.clips[idx] = b
	return b
}

// markerSeq returns the shared, read-only PN marker template.
func (h *Hub) markerSeq() *ekho.MarkerSequence {
	h.seqOne.Do(func() { h.seq = ekho.NewMarkerSequence(h.cfg.Seed) })
	return h.seq
}

// Serve runs the hub until Close: it starts the shard workers, the media
// ticker and the idle reaper, then demultiplexes inbound datagrams in
// the calling goroutine. It returns nil after a clean Close and the
// socket error otherwise. Serve may be called once.
func (h *Hub) Serve() error {
	if !h.served.CompareAndSwap(false, true) {
		return errors.New("hub: Serve called twice")
	}
	for _, sh := range h.shards {
		h.wg.Add(1)
		go h.worker(sh)
	}
	if h.cfg.TickEvery > 0 {
		h.wg.Add(1)
		go h.tickLoop()
	}
	if h.cfg.IdleTimeout > 0 {
		h.wg.Add(1)
		go h.reapLoop()
	}
	h.logf("hub: serving on %s (capacity %d, %d shards)", h.conn.LocalAddr(), h.cfg.Capacity, h.cfg.Shards)

	err := h.recvLoop()
	h.Close()
	h.wg.Wait()
	h.flushSessions()
	return err
}

// recvLoop reads and dispatches datagrams until the hub closes. Socket
// errors other than shutdown and deadline expiry are propagated.
func (h *Hub) recvLoop() error {
	for {
		msg, err := h.conn.Recv(time.Now().Add(time.Second))
		if err != nil {
			if h.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			if isTimeout(err) {
				continue
			}
			return fmt.Errorf("hub: receive: %w", err)
		}
		if h.isClosed() {
			return nil
		}
		h.Dispatch(msg)
	}
}

// Dispatch routes one decoded datagram to its session's shard worker,
// admitting the session first if the packet is a Hello. It is normally
// called only by Serve's receive loop; it is exported for benchmarks and
// tests that drive the hub without a socket.
func (h *Hub) Dispatch(msg transport.Message) {
	h.stats.packetsIn.Add(1)
	sh := h.shards[shardIndex(msg.Session, len(h.shards))]
	s := sh.lookup(msg.Session)
	if s == nil {
		if msg.Type != transport.TypeHello {
			h.stats.strays.Add(1)
			return
		}
		if s = h.admit(sh, msg); s == nil {
			return
		}
	}
	s.lastActive.Store(time.Now().UnixNano())
	h.enqueue(sh, work{kind: workPacket, msg: msg, s: s})
}

// admit applies admission control for a first Hello. It returns the new
// session, or nil after sending a TypeBusy reject.
func (h *Hub) admit(sh *shard, msg transport.Message) *session {
	active := h.stats.active.Load()
	if h.draining.Load() || active >= int64(h.cfg.Capacity) {
		h.stats.rejected.Add(1)
		h.send(transport.EncodeBusy(transport.Busy{
			Session:  msg.Session,
			Active:   uint32(active),
			Capacity: uint32(h.cfg.Capacity),
		}), msg.From)
		h.logf("hub: session %d rejected busy (active %d / capacity %d, draining=%v)",
			msg.Session, active, h.cfg.Capacity, h.draining.Load())
		return nil
	}
	s := h.newSession(msg.Session)
	if !sh.insert(s) {
		// Lost a (benchmark-only) race with another dispatcher; use the
		// session that won.
		return sh.lookup(msg.Session)
	}
	cur := h.stats.active.Add(1)
	h.stats.bumpPeak(cur)
	h.stats.admitted.Add(1)
	h.logf("hub: session %d admitted (%d active)", msg.Session, cur)
	return s
}

// Tick advances every session by one 20 ms media frame. The internal
// ticker calls it when TickEvery > 0; tests drive it directly to run
// faster than real time. Enqueueing blocks when a shard worker is
// saturated, so pacing degrades gracefully instead of queueing
// unboundedly.
func (h *Hub) Tick() {
	for _, sh := range h.shards {
		h.enqueue(sh, work{kind: workTick})
	}
}

func (h *Hub) tickLoop() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			h.Tick()
		}
	}
}

// reapLoop periodically probes for idle sessions. Eviction happens on
// the shard worker (a reap work item) so session state stays
// single-threaded; the probe carries the observed lastActive and the
// worker aborts the eviction if traffic arrived in between.
func (h *Hub) reapLoop() {
	defer h.wg.Done()
	every := h.cfg.IdleTimeout / 4
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			cutoff := time.Now().Add(-h.cfg.IdleTimeout).UnixNano()
			for _, sh := range h.shards {
				var stale []work
				sh.mu.Lock()
				for id, s := range sh.sessions {
					if last := s.lastActive.Load(); last < cutoff {
						stale = append(stale, work{kind: workReap, id: id, seen: last})
					}
				}
				sh.mu.Unlock()
				for _, w := range stale {
					h.enqueue(sh, w)
				}
			}
		}
	}
}

// Drain stops admitting new sessions (hellos are rejected with
// TypeBusy) while in-flight sessions keep streaming.
func (h *Hub) Drain() {
	if h.draining.CompareAndSwap(false, true) {
		h.logf("hub: draining: no new sessions admitted")
	}
}

// Shutdown drains the hub, waits up to grace for in-flight sessions to
// finish (Bye or idle reap), then closes it.
func (h *Hub) Shutdown(grace time.Duration) {
	h.Drain()
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) && h.stats.active.Load() > 0 {
		time.Sleep(20 * time.Millisecond)
	}
	h.Close()
}

// Close stops the hub: workers, ticker and reaper exit, the socket is
// closed, and Serve returns after emitting OnSessionEnd for every
// session still registered.
func (h *Hub) Close() {
	h.closing.Do(func() {
		close(h.done)
		_ = h.conn.Close()
	})
}

func (h *Hub) isClosed() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// flushSessions emits results for sessions still registered at
// shutdown. Workers have already stopped, so session state is
// quiescent.
func (h *Hub) flushSessions() {
	for _, sh := range h.shards {
		sh.mu.Lock()
		ss := make([]*session, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			ss = append(ss, s)
		}
		sh.sessions = make(map[uint32]*session)
		sh.mu.Unlock()
		for _, s := range ss {
			h.stats.active.Add(-1)
			h.stats.ended.Add(1)
			s.closeRecorder()
			if h.cfg.OnSessionEnd != nil {
				h.cfg.OnSessionEnd(s.id, s.result())
			}
		}
	}
}

// send transmits one encoded datagram, counting outcomes.
func (h *Hub) send(b []byte, to net.Addr) {
	if to == nil {
		return
	}
	if err := h.conn.SendTo(b, to); err != nil {
		h.stats.sendErrs.Add(1)
		return
	}
	h.stats.packetsOut.Add(1)
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
