package hub

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ekho"
	"ekho/internal/audio"
	"ekho/internal/codec"
	"ekho/internal/rtp"
	"ekho/internal/transport"
)

// MemNet is an in-process datagram network with UDP semantics (unreliable,
// unordered across endpoints, drop-on-overflow): tests and benchmarks use
// it to run many loopback sessions against a hub without sockets, driven
// faster than real time.
type MemNet struct {
	mu  sync.Mutex
	eps map[string]*memConn
}

// NewMemNet returns an empty in-process network.
func NewMemNet() *MemNet { return &MemNet{eps: make(map[string]*memConn)} }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

type datagram struct {
	b []byte
	// from is the sender's boxed address (boxed once per endpoint, so
	// batch receives stay allocation-free on the receiver).
	from net.Addr
}

type memConn struct {
	net  *MemNet
	addr memAddr
	// addrI is addr pre-boxed as a net.Addr.
	addrI net.Addr
	ch    chan datagram
	done  chan struct{}
	once  sync.Once
	// dec decodes inbound datagrams (default: v2 only), mirroring
	// transport.Conn's pluggable wire codec seam.
	dec transport.Decoder
}

// SetDecoder replaces the endpoint's wire decoder (e.g. rtp.NewCodec()
// to accept RTP framing). Call before any receive, as on
// *transport.Conn; nil is ignored.
func (c *memConn) SetDecoder(d transport.Decoder) {
	if d != nil {
		c.dec = d
	}
}

// Endpoint creates (or returns) the named endpoint. The queue depth
// plays the role of a socket buffer: sends to a full endpoint are
// dropped, exactly like UDP under pressure.
func (n *MemNet) Endpoint(name string) Conn {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.eps[name]; ok {
		return c
	}
	c := &memConn{
		net:  n,
		addr: memAddr(name),
		ch:   make(chan datagram, 1024),
		done: make(chan struct{}),
		dec:  transport.V2{},
	}
	c.addrI = c.addr
	n.eps[name] = c
	return c
}

func (c *memConn) LocalAddr() net.Addr { return c.addr }

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func (c *memConn) SendTo(b []byte, to net.Addr) error {
	c.net.mu.Lock()
	peer := c.net.eps[to.String()]
	c.net.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("memnet: no route to %s", to)
	}
	d := datagram{b: append([]byte(nil), b...), from: c.addrI}
	select {
	case peer.ch <- d:
	default:
		// Receiver buffer full: drop, like a kernel UDP socket.
	}
	return nil
}

func (c *memConn) Recv(deadline time.Time) (transport.Message, error) {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		select {
		case <-c.done:
			return transport.Message{}, net.ErrClosed
		case d := <-c.ch:
			var msg transport.Message
			if err := c.dec.DecodeInto(&msg, d.b); err != nil {
				continue // ignore stray datagrams
			}
			msg.From = d.from
			return msg, nil
		case <-timer.C:
			return transport.Message{}, os.ErrDeadlineExceeded
		}
	}
}

// RecvBatch implements hub.BatchConn: one blocking receive, then a
// non-blocking drain of the endpoint queue until the batch fills. The
// loopback fleet and equivalence tests therefore exercise exactly the
// batched wire path the live UDP server runs.
func (c *memConn) RecvBatch(deadline time.Time, msgs []transport.Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	n := 0
	for n < len(msgs) {
		if n == 0 {
			select {
			case <-c.done:
				return 0, net.ErrClosed
			case d := <-c.ch:
				if c.dec.DecodeInto(&msgs[0], d.b) != nil {
					continue // ignore stray datagrams
				}
				msgs[0].From = d.from
				n = 1
			case <-timer.C:
				return 0, os.ErrDeadlineExceeded
			}
			continue
		}
		select {
		case d := <-c.ch:
			if c.dec.DecodeInto(&msgs[n], d.b) != nil {
				continue
			}
			msgs[n].From = d.from
			n++
		default:
			return n, nil // queue drained
		}
	}
	return n, nil
}

// SendBatch implements hub.BatchConn by delivering each datagram in
// order; like UDP, sends to full or unknown endpoints are dropped
// (unknown destinations count as errors, as with SendTo).
func (c *memConn) SendBatch(pkts []transport.Packet) (int, error) {
	sent := 0
	var firstErr error
	for i := range pkts {
		if err := c.SendTo(pkts[i].Buf, pkts[i].To); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// LoopbackScenario configures an in-process fleet of emulated player
// sessions against one hub. Each session has a screen and a controller
// endpoint, a per-session acoustic air delay (the ISD the hub must
// measure and compensate) and a per-session clock offset (Ekho needs no
// clock synchronization, so offsets must not matter). All timing is
// content-derived — timestamps come from frame sequence numbers, not the
// wall clock — so the fleet runs as fast as the machine allows.
type LoopbackScenario struct {
	// Sessions is the number of client fleets to launch.
	Sessions int
	// ContentSeconds is the audio each admitted session streams.
	ContentSeconds float64
	// Capacity caps hub admissions (default: Sessions).
	Capacity int
	// Shards sets the hub's shard/worker count (default 8).
	Shards int
	// AirDelayFrames gives a session's screen-to-mic delay in 20 ms
	// frames (default: 4 + id%9, i.e. 80-240 ms).
	AirDelayFrames func(id uint32) int
	// ClockOffsetSec gives a session's local clock offset (default:
	// one second per session id).
	ClockOffsetSec func(id uint32) float64
	// Attenuation is the overheard path gain (default 0.1).
	Attenuation float64
	// Codec is the chat uplink profile (default codec.Lossless, which
	// keeps a 64-session fleet cheap; use codec.SWB32 for the paper's
	// uplink).
	Codec codec.Profile
	// Wire selects the fleet's wire framing (default transport.WireV2;
	// transport.WireRTP runs the same scenario over RTP packetization —
	// the server accepts both either way, sniffing per datagram).
	Wire transport.Wire
	// Compensator tunes the per-session loop (default: 3 s settling,
	// which suits accelerated runs).
	Compensator ekho.CompensatorConfig
	// RecordDir, when non-empty, records every admitted session's
	// timeline to trace logs for deterministic replay.
	RecordDir string
	// Logf receives hub progress lines (nil silences them).
	Logf Logf
}

// LoopbackReport is the outcome of a loopback fleet run.
type LoopbackReport struct {
	// Results holds one entry per session the hub admitted and ended.
	Results []SessionResult
	// Rejected lists session ids refused with TypeBusy.
	Rejected []uint32
	// Stats is the hub's final counter snapshot.
	Stats Snapshot
}

func (sc LoopbackScenario) withDefaults() LoopbackScenario {
	if sc.Capacity == 0 {
		sc.Capacity = sc.Sessions
	}
	if sc.Shards == 0 {
		sc.Shards = 8
	}
	if sc.AirDelayFrames == nil {
		sc.AirDelayFrames = func(id uint32) int { return 4 + int(id%9) }
	}
	if sc.ClockOffsetSec == nil {
		sc.ClockOffsetSec = func(id uint32) float64 { return float64(id) }
	}
	if sc.Attenuation == 0 {
		sc.Attenuation = 0.1
	}
	if sc.Codec.Name == "" {
		sc.Codec = codec.Lossless
	}
	if sc.Compensator.SettleSec == 0 {
		sc.Compensator.SettleSec = 3
	}
	return sc
}

// RunLoopback launches a hub plus an emulated client fleet on a MemNet,
// streams ContentSeconds of media to every admitted session as fast as
// the machine allows, and returns the per-session results.
func RunLoopback(sc LoopbackScenario) (*LoopbackReport, error) {
	sc = sc.withDefaults()
	mem := NewMemNet()
	serverConn := mem.Endpoint("hub")
	// The hub socket sniffs framings per datagram, exactly like the live
	// server: v2 fleets and RTP fleets run against the same decode path.
	serverConn.(*memConn).SetDecoder(rtp.NewCodec())
	serverAddr := serverConn.LocalAddr()

	var resMu sync.Mutex
	var results []SessionResult
	ready := make(chan uint32, sc.Sessions)
	h := New(Config{
		Capacity:       sc.Capacity,
		Shards:         sc.Shards,
		TickEvery:      -1, // driven below, flat out
		IdleTimeout:    -1,
		Codec:          sc.Codec,
		Compensator:    sc.Compensator,
		RecordDir:      sc.RecordDir,
		Logf:           sc.Logf,
		OnSessionReady: func(id uint32) { ready <- id },
		OnSessionEnd: func(id uint32, r SessionResult) {
			resMu.Lock()
			results = append(results, r)
			resMu.Unlock()
		},
	}, serverConn)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()

	rejCh := make(chan uint32, 2*sc.Sessions)
	var clientWG sync.WaitGroup
	clients := make([]*loopbackClient, 0, sc.Sessions)
	for i := 0; i < sc.Sessions; i++ {
		id := uint32(i + 1)
		c := &loopbackClient{
			id:          id,
			server:      serverAddr,
			screen:      mem.Endpoint(fmt.Sprintf("screen-%d", id)),
			ctrl:        mem.Endpoint(fmt.Sprintf("ctrl-%d", id)),
			delayFrames: sc.AirDelayFrames(id),
			offset:      sc.ClockOffsetSec(id),
			atten:       sc.Attenuation,
			enc:         codec.NewEncoder(sc.Codec),
			wenc:        wireEncoder(sc.Wire),
		}
		if sc.Wire == transport.WireRTP {
			// The hub replies in the session's helloed framing, so RTP
			// fleets need RTP-decoding endpoints (one stateful codec per
			// receive loop).
			c.screen.(*memConn).SetDecoder(rtp.NewCodec())
			c.ctrl.(*memConn).SetDecoder(rtp.NewCodec())
		}
		clients = append(clients, c)
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			c.run(rejCh)
		}()
	}

	stopAll := func() {
		h.Close()
		for _, c := range clients {
			c.screen.Close()
			c.ctrl.Close()
		}
		clientWG.Wait()
	}

	// Every session must either come up or be rejected before streaming
	// starts, so each admitted session gets the full content length.
	var rejected []uint32
	for seen := 0; seen < sc.Sessions; {
		select {
		case <-ready:
			seen++
		case id := <-rejCh:
			rejected = append(rejected, id)
			seen++
		case err := <-serveErr:
			stopAll()
			return nil, fmt.Errorf("hub exited during session setup: %w", err)
		case <-time.After(30 * time.Second):
			stopAll()
			return nil, errors.New("hub loopback: sessions failed to start")
		}
	}

	// Drive content in lockstep: after each tick, wait for the chat
	// echoes of that frame (one per admitted session) to reach the hub.
	// Without pacing the whole clip would be emitted before the first
	// compensation could influence playback, and the flood would
	// overflow the loopback buffers.
	admitted := h.Stats().Admitted
	base := h.Stats().PacketsIn
	for i := int64(1); i <= int64(sc.ContentSeconds/frameSec); i++ {
		h.Tick()
		want := base + admitted*i
		lag := time.Now().Add(100 * time.Millisecond)
		for h.Stats().PacketsIn < want && time.Now().Before(lag) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Quiesce: chats are in flight behind the last media frames; wait
	// until the hub's inbound count stops moving.
	last := int64(-1)
	for i := 0; i < 250; i++ {
		cur := h.Stats().PacketsIn
		if cur == last {
			break
		}
		last = cur
		time.Sleep(20 * time.Millisecond)
	}
	stats := h.Stats()
	stopAll()
	if err := <-serveErr; err != nil {
		return nil, err
	}
	// Late rejections (none expected after setup, but drain the channel).
	for {
		select {
		case id := <-rejCh:
			rejected = append(rejected, id)
			continue
		default:
		}
		break
	}
	return &LoopbackReport{Results: results, Rejected: rejected, Stats: stats}, nil
}

// loopbackClient emulates one player: a controller endpoint that logs
// accessory playback records and a screen endpoint whose playback is
// overheard by the headset mic after a fixed air delay, encoded and
// shipped back as chat. Timestamps are derived from sequence numbers on
// a per-session offset clock.
type loopbackClient struct {
	id          uint32
	server      net.Addr
	screen      Conn
	ctrl        Conn
	delayFrames int
	offset      float64
	atten       float64
	enc         *codec.Encoder
	// wenc frames every packet this client sends (v2 or RTP).
	wenc transport.WireEncoder

	mu       sync.Mutex
	pending  []transport.PlaybackRecord
	rejected atomic.Bool

	// screenLoop scratch (single goroutine): MemNet.SendTo copies the
	// datagram, so the chat buffer is reusable across sends.
	mic  []float64
	enc2 []byte
	chat []byte
}

func (c *loopbackClient) run(rejCh chan<- uint32) {
	_ = c.screen.SendTo(c.wenc.AppendHello(nil, transport.Hello{Session: c.id, Role: transport.RoleScreen}), c.server)
	_ = c.ctrl.SendTo(c.wenc.AppendHello(nil, transport.Hello{Session: c.id, Role: transport.RoleController}), c.server)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.ctrlLoop(rejCh)
	}()
	c.screenLoop(rejCh)
	wg.Wait()
}

func (c *loopbackClient) reject(rejCh chan<- uint32) {
	if c.rejected.CompareAndSwap(false, true) {
		rejCh <- c.id
	}
}

// ctrlLoop plays the accessory stream: every content-bearing frame
// yields a playback record on the session's local clock.
func (c *loopbackClient) ctrlLoop(rejCh chan<- uint32) {
	for {
		msg, err := c.ctrl.Recv(time.Now().Add(time.Minute))
		if err != nil {
			return
		}
		switch msg.Type {
		case transport.TypeBusy:
			c.reject(rejCh)
		case transport.TypeMedia:
			md := msg.Media
			if md.ContentStart < 0 {
				continue
			}
			at := c.offset + float64(md.Seq)*frameSec + float64(md.ContentOff)/ekho.SampleRate
			c.mu.Lock()
			c.pending = append(c.pending, transport.PlaybackRecord{
				ContentStart: md.ContentStart,
				LocalMicros:  int64(at * 1e6),
				N:            uint16(len(md.Samples)) - md.ContentOff,
			})
			c.mu.Unlock()
		}
	}
}

// screenLoop overhears the screen playback: each screen frame reaches
// the mic delayFrames later, is attenuated, encoded and sent back as
// chat with the pending playback records piggybacked.
func (c *loopbackClient) screenLoop(rejCh chan<- uint32) {
	for {
		msg, err := c.screen.Recv(time.Now().Add(time.Minute))
		if err != nil {
			return
		}
		switch msg.Type {
		case transport.TypeBusy:
			c.reject(rejCh)
		case transport.TypeMedia:
			md := msg.Media
			if cap(c.mic) < len(md.Samples) {
				c.mic = make([]float64, len(md.Samples))
			}
			buf := c.mic[:len(md.Samples)]
			for i, v := range md.Samples {
				buf[i] = audio.Int16ToFloat(v) * c.atten
			}
			pkt, err := c.enc.EncodeTo(c.enc2[:0], buf)
			if err != nil {
				continue
			}
			c.enc2 = pkt
			adc := int64((c.offset + (float64(md.Seq)+float64(c.delayFrames))*frameSec) * 1e6)
			c.mu.Lock()
			recs := c.pending
			c.pending = nil
			c.mu.Unlock()
			b, err := c.wenc.AppendChat(c.chat[:0], transport.Chat{
				Seq: md.Seq, Session: c.id, ADCMicros: adc, Records: recs, Encoded: pkt})
			if err != nil {
				continue
			}
			c.chat = b
			_ = c.screen.SendTo(b, c.server)
		}
	}
}
