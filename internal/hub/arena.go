package hub

import (
	"sync/atomic"

	"ekho/internal/transport"
)

// batchSize is how many datagrams one receive batch can carry — sized to
// drain a bursty socket in one wakeup without making arenas heavy.
const batchSize = 64

// numArenas bounds how many receive batches can be in flight at once
// (being filled by the receive loop or processed by shard workers).
// When every arena is out, the receive loop waits — by then the shard
// queues are the bottleneck and their shedding policy is in charge, so
// the kernel socket buffer remains the only other drop point.
const numArenas = 4

// packetWork is one data-plane packet routed to a shard worker: the
// decoded message (a slot in some arena) and its resolved session.
type packetWork struct {
	m *transport.Message
	s *session
}

// recvArena is a reusable decode arena for one receive batch. Message
// slots keep their payload capacity across batches (transport.DecodeInto),
// and the per-shard staging slices are recycled the same way, so a
// steady-state receive loop allocates nothing. An arena is handed back
// to the hub's freelist once the receive loop and every shard worker
// holding a sub-batch have released it.
type recvArena struct {
	h        *Hub
	msgs     []transport.Message
	perShard [][]packetWork
	// pending counts outstanding holds: one for the dispatching receive
	// loop plus one per enqueued shard sub-batch.
	pending atomic.Int32
}

func newRecvArena(h *Hub) *recvArena {
	return &recvArena{
		h:        h,
		msgs:     make([]transport.Message, batchSize),
		perShard: make([][]packetWork, len(h.shards)),
	}
}

// take pulls a free arena, blocking until one returns or the hub closes
// (nil). Staging slices come back emptied.
func (h *Hub) takeArena() *recvArena {
	select {
	case a := <-h.arenaFree:
		return a
	case <-h.done:
		return nil
	}
}

// release drops one hold on the arena; the last hold recycles it onto
// the freelist.
func (a *recvArena) release() {
	if a.pending.Add(-1) != 0 {
		return
	}
	for i := range a.perShard {
		a.perShard[i] = a.perShard[i][:0]
	}
	a.h.arenaFree <- a
}
