package hub

import (
	"testing"

	"ekho/internal/transport"
)

// TestLoopbackWireEquivalence runs the same multi-session loopback fleet
// over both wire framings: every session's ISD measurement sequence must
// be bit-identical between v2 and RTP. The RTP encoder derives sequence
// numbers and timestamps from the packets themselves, so framing must
// not perturb the measurement pipeline in any way — this is the
// end-to-end half of the RTP↔v2 equivalence (the codec-level half lives
// in internal/rtp).
func TestLoopbackWireEquivalence(t *testing.T) {
	scenario := func(w transport.Wire) LoopbackScenario {
		return LoopbackScenario{
			Sessions:       3,
			ContentSeconds: 8,
			Wire:           w,
			AirDelayFrames: func(id uint32) int { return 4 + int(id%5) },
			ClockOffsetSec: func(id uint32) float64 { return float64(id) },
			Attenuation:    0.1,
		}
	}
	v2, err := RunLoopback(scenario(transport.WireV2))
	if err != nil {
		t.Fatal(err)
	}
	rtpRep, err := RunLoopback(scenario(transport.WireRTP))
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Results) != len(rtpRep.Results) {
		t.Fatalf("session counts differ: v2 %d, rtp %d", len(v2.Results), len(rtpRep.Results))
	}
	for i := range v2.Results {
		a, b := v2.Results[i], rtpRep.Results[i]
		if len(a.ISDs) == 0 {
			t.Fatalf("session %d: no measurements over v2", i)
		}
		if len(a.ISDs) != len(b.ISDs) {
			t.Fatalf("session %d: measurement counts differ: v2 %d, rtp %d", i, len(a.ISDs), len(b.ISDs))
		}
		for j := range a.ISDs {
			if a.ISDs[j] != b.ISDs[j] {
				t.Fatalf("session %d ISD %d: v2 %.12f, rtp %.12f", i, j, a.ISDs[j], b.ISDs[j])
			}
		}
		if a.Actions != b.Actions {
			t.Fatalf("session %d: actions v2 %d, rtp %d", i, a.Actions, b.Actions)
		}
	}
}
