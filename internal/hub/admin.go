package hub

import (
	"encoding/json"
	"net/http"
)

// RegisterAdmin mounts the hub's observability endpoints on mux:
//
//	GET /metrics   Prometheus text exposition of every hub counter,
//	               gauge and derived quantile (internal/metrics).
//	GET /sessions  JSON array of per-session SessionInfo snapshots,
//	               sorted by session ID.
//
// Both are cheap enough to scrape continuously: /metrics reads each
// metric with one atomic load; /sessions snapshots on the shard workers
// and so waits briefly behind in-flight packet work.
//
// cmd/ekho-server mounts these on the -pprof mux; embedders can mount
// them anywhere (the handlers hold only the *Hub).
func (h *Hub) RegisterAdmin(mux *http.ServeMux) {
	mux.Handle("/metrics", h.stats.reg.Handler())
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, _ *http.Request) {
		infos := h.SessionInfos()
		if infos == nil {
			infos = []SessionInfo{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(infos)
	})
}
