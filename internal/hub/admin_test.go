package hub

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ekho/internal/metrics"
	"ekho/internal/transport"
)

// TestAdminEndpoints drives a hub and scrapes its observability plane:
// /metrics must expose live registry counters in Prometheus text format
// and /sessions must serve per-session JSON snapshots.
func TestAdminEndpoints(t *testing.T) {
	mem := NewMemNet()
	conn := mem.Endpoint("hub")
	reg := metrics.NewRegistry()
	h := New(Config{TickEvery: -1, IdleTimeout: -1, Capacity: 4, Shards: 2, Metrics: reg}, conn)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()
	defer h.Close()

	from := mem.Endpoint("client").LocalAddr()
	h.Dispatch(transport.Message{
		Type: transport.TypeHello, Session: 7,
		Hello: transport.Hello{Session: 7, Role: transport.RoleScreen},
		Wire:  transport.WireRTP, From: from,
	})
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Admitted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("session never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	mux := http.NewServeMux()
	h.RegisterAdmin(mux)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, line := range []string{
		"# TYPE ekho_sessions_active gauge",
		"ekho_sessions_active 1",
		"ekho_sessions_admitted_total 1",
		`ekho_shard_packets_total{shard="0"}`,
		"ekho_dispatch_p99_ms",
	} {
		if !strings.Contains(body, line) {
			t.Fatalf("/metrics missing %q in:\n%s", line, body)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/sessions", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/sessions status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/sessions content type %q", ct)
	}
	var infos []SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatalf("/sessions JSON: %v\n%s", err, rec.Body.String())
	}
	if len(infos) != 1 || infos[0].ID != 7 || infos[0].Wire != "rtp" {
		t.Fatalf("/sessions = %+v, want one session 7 on rtp wire", infos)
	}

	// The shared registry handed in via Config is the same one the
	// handler renders: embedders can merge their own metrics into it.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ekho_sessions_active 1") {
		t.Fatal("Config.Metrics registry not wired to hub counters")
	}
}
