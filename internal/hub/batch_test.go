package hub

import (
	"net"
	"testing"
	"time"

	"ekho/internal/metrics"
	"ekho/internal/transport"
)

// startWorkers launches a hub's shard workers without a receive loop, so
// tests can drive DispatchBatch/Dispatch directly and own the packet
// lifetimes. The returned stop function shuts the hub down and waits.
func startWorkers(h *Hub) (stop func()) {
	for _, sh := range h.shards {
		h.wg.Add(1)
		go h.worker(sh)
	}
	return func() {
		h.Close()
		h.wg.Wait()
	}
}

// waitArenasIdle blocks until every receive arena is back on the
// freelist — i.e. all dispatched batches have been fully processed —
// then returns them. Channel operations only, so it is allocation-free.
func waitArenasIdle(h *Hub) {
	var held [numArenas]*recvArena
	for i := range held {
		held[i] = <-h.arenaFree
	}
	for _, a := range held {
		h.arenaFree <- a
	}
}

// admitDirect admits a session via the dispatch path and waits until its
// hello has been processed.
func admitDirect(t testing.TB, h *Hub, id uint32, from net.Addr) {
	t.Helper()
	h.Dispatch(transport.Message{
		Type:    transport.TypeHello,
		Session: id,
		Hello:   transport.Hello{Session: id, Role: transport.RoleScreen},
		From:    from,
	})
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Admitted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("session never admitted")
		}
		time.Sleep(time.Millisecond)
	}
}

// mediaDatagram encodes one full-size media frame for session id.
func mediaDatagram(t testing.TB, id uint32, seq uint32) []byte {
	t.Helper()
	samples := make([]int16, 960)
	for i := range samples {
		samples[i] = int16(i)
	}
	b, err := transport.EncodeMedia(transport.Media{
		Seq: seq, Session: id, ContentStart: int64(seq) * 960, Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardOverloadShedsMediaKeepsControl saturates a one-shard hub —
// the worker is wedged and the work queue filled — and asserts the
// overload policy: data-plane packets are shed and counted while
// Hello/Bye control packets ride the control lane and still take effect
// once the worker resumes.
func TestShardOverloadShedsMediaKeepsControl(t *testing.T) {
	mem := NewMemNet()
	conn := mem.Endpoint("hub")
	ended := make(chan uint32, 4)
	h := New(Config{
		TickEvery: -1, IdleTimeout: -1,
		Shards: 1, QueueDepth: 2, Capacity: 8,
		OnSessionEnd: func(id uint32, r SessionResult) { ended <- id },
	}, conn)
	stop := startWorkers(h)
	defer stop()
	from := mem.Endpoint("client").LocalAddr()

	admitDirect(t, h, 1, from)

	// Wedge the worker: a stats probe whose result nobody reads yet.
	block := make(chan []SessionInfo)
	sh := h.shards[0]
	if !h.enqueue(sh, work{kind: workStats, stats: block}) {
		t.Fatal("enqueue stats probe")
	}

	// Flood media for the admitted session until the queue overflows and
	// shedding kicks in.
	msgs := make([]transport.Message, 8)
	for i := range msgs {
		if err := transport.DecodeInto(&msgs[i], mediaDatagram(t, 1, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no shedding after sustained overload: %v", h.Stats())
		}
		h.DispatchBatch(msgs)
	}
	shed := h.Stats().Shed

	// Control packets must still get through: a new session's hello and
	// the old session's bye both land on the control lane.
	h.DispatchBatch([]transport.Message{
		{Type: transport.TypeHello, Session: 2, Hello: transport.Hello{Session: 2, Role: transport.RoleScreen}, From: from},
		{Type: transport.TypeBye, Session: 1, Bye: transport.Bye{Session: 1}, From: from},
	})
	if got := h.Stats().Admitted; got != 2 {
		t.Fatalf("admitted %d sessions under overload, want 2", got)
	}
	if dropped := h.Stats().CtrlDropped; dropped != 0 {
		t.Fatalf("%d control packets dropped, want 0", dropped)
	}

	<-block // un-wedge the worker
	select {
	case id := <-ended:
		if id != 1 {
			t.Fatalf("session %d ended, want 1 (bye)", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("bye never took effect after overload: %v", h.Stats())
	}
	if s := h.Stats(); s.Shed < shed || s.ActiveSessions != 1 {
		t.Errorf("post-overload stats = %v, want shed >= %d and 1 active", s, shed)
	}
}

// TestDrainUnderLoad drains a hub while a media flood is in flight: the
// existing session keeps being served, the new hello is refused with
// TypeBusy, and shutdown stays clean.
func TestDrainUnderLoad(t *testing.T) {
	mem := NewMemNet()
	server := mem.Endpoint("hub")
	h := New(Config{TickEvery: -1, IdleTimeout: -1, Capacity: 8}, server)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()
	defer h.Close()

	first := mem.Endpoint("first")
	if err := first.SendTo(
		transport.EncodeHello(transport.Hello{Session: 1, Role: transport.RoleScreen}),
		server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Admitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first session never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Continuous media flood for session 1 through the real socket path.
	stopFlood := make(chan struct{})
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		pkt := mediaDatagram(t, 1, 0)
		for {
			select {
			case <-stopFlood:
				return
			default:
				_ = first.SendTo(pkt, server.LocalAddr())
			}
		}
	}()

	h.Drain()
	before := h.Stats().PacketsIn

	second := mem.Endpoint("second")
	if err := second.SendTo(
		transport.EncodeHello(transport.Hello{Session: 2, Role: transport.RoleScreen}),
		server.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	msg, err := second.Recv(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatalf("waiting for busy reject under load: %v", err)
	}
	if msg.Type != transport.TypeBusy || msg.Session != 2 {
		t.Fatalf("got %v for session %d, want TypeBusy for 2", msg.Type, msg.Session)
	}

	// The flood must still be flowing through the draining hub.
	deadline = time.Now().Add(5 * time.Second)
	for h.Stats().PacketsIn <= before {
		if time.Now().After(deadline) {
			t.Fatal("packet flow stalled during drain")
		}
		time.Sleep(time.Millisecond)
	}

	close(stopFlood)
	<-floodDone
	if s := h.Stats(); s.Rejected == 0 || s.ActiveSessions != 1 {
		t.Errorf("drain-under-load stats = %v, want >=1 rejected and 1 active", s)
	}
	h.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestBatchedDispatchAllocFree locks in the zero-allocation steady
// state of the batched dispatch path: decoding a full batch into a
// recycled arena, routing it to shard workers and processing it
// performs no heap allocations once warm.
func TestBatchedDispatchAllocFree(t *testing.T) {
	mem := NewMemNet()
	conn := mem.Endpoint("hub")
	h := New(Config{TickEvery: -1, IdleTimeout: -1, Capacity: 4}, conn)
	stop := startWorkers(h)
	defer stop()
	from := mem.Endpoint("client").LocalAddr()
	admitDirect(t, h, 1, from)

	raw := make([][]byte, batchSize)
	for i := range raw {
		raw[i] = mediaDatagram(t, 1, uint32(i))
	}
	msgs := make([]transport.Message, batchSize)
	cycle := func() {
		for i := range msgs {
			if err := transport.DecodeInto(&msgs[i], raw[i]); err != nil {
				t.Fatal(err)
			}
		}
		h.DispatchBatch(msgs)
		waitArenasIdle(h)
	}
	for i := 0; i < 4; i++ {
		cycle() // warm arenas, staging slices and decode capacity
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Errorf("batched decode+dispatch of %d packets allocates %.1f times per batch, want 0",
			batchSize, allocs)
	}
	if shed := h.Stats().Shed; shed != 0 {
		t.Fatalf("alloc test shed %d packets; queue sizing broken", shed)
	}
}

// TestServeFallbackPlainConn proves the per-packet fallback path still
// works end to end when the hub's Conn lacks batch support: sessions
// come up and media flows out through the looped SendTo egress flush.
func TestServeFallbackPlainConn(t *testing.T) {
	mem := NewMemNet()
	inner := mem.Endpoint("hub")
	ready := make(chan uint32, 1)
	h := New(Config{
		TickEvery: -1, IdleTimeout: -1, Capacity: 2,
		OnSessionReady: func(id uint32) { ready <- id },
	}, plainConn{inner})
	if h.bconn != nil {
		t.Fatal("plainConn unexpectedly detected as BatchConn")
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve() }()
	defer h.Close()

	screen := mem.Endpoint("screen")
	ctrl := mem.Endpoint("ctrl")
	for _, ep := range []struct {
		c    Conn
		role transport.Role
	}{{screen, transport.RoleScreen}, {ctrl, transport.RoleController}} {
		if err := ep.c.SendTo(
			transport.EncodeHello(transport.Hello{Session: 1, Role: ep.role}),
			inner.LocalAddr()); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("session never became ready on fallback path")
	}
	h.Tick()
	for _, ep := range []Conn{screen, ctrl} {
		msg, err := ep.Recv(time.Now().Add(5 * time.Second))
		if err != nil {
			t.Fatalf("media never arrived on fallback path: %v", err)
		}
		if msg.Type != transport.TypeMedia || msg.Session != 1 {
			t.Fatalf("got %v packet for session %d, want media for 1", msg.Type, msg.Session)
		}
	}
	h.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// plainConn hides a MemNet endpoint's batch methods, leaving only the
// basic Conn surface.
type plainConn struct{ inner Conn }

func (p plainConn) Recv(deadline time.Time) (transport.Message, error) { return p.inner.Recv(deadline) }
func (p plainConn) SendTo(b []byte, to net.Addr) error                 { return p.inner.SendTo(b, to) }
func (p plainConn) LocalAddr() net.Addr                                { return p.inner.LocalAddr() }
func (p plainConn) Close() error                                       { return p.inner.Close() }

// TestDispatchLatencyHistogram sanity-checks the quantile accounting the
// load harness keys off.
func TestDispatchLatencyHistogram(t *testing.T) {
	c := newCounters(metrics.NewRegistry())
	c.observeDispatch(1000, 90)  // ~1 µs × 90 packets
	c.observeDispatch(1<<20, 10) // ~1 ms × 10 packets
	var l LatencyHist
	for i := range l {
		l[i] = c.latency[i].Load()
	}
	if got := l.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if p50 := l.Quantile(0.50); p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want <= 2µs", p50)
	}
	if p99 := l.Quantile(0.99); p99 < 512*time.Microsecond || p99 > 4*time.Millisecond {
		t.Errorf("p99 = %v, want ~1-2ms bucket", p99)
	}
	if d := l.Sub(l); d.Count() != 0 {
		t.Errorf("self-difference not empty: %d", d.Count())
	}
	var empty LatencyHist
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

// benchIngestHub builds a worker-only hub with `sessions` admitted
// sessions and one encoded media datagram per session.
func benchIngestHub(b *testing.B, sessions int) (*Hub, [][]byte, func()) {
	b.Helper()
	mem := NewMemNet()
	conn := mem.Endpoint("hub")
	h := New(Config{TickEvery: -1, IdleTimeout: -1, Capacity: sessions}, conn)
	stop := startWorkers(h)
	from := mem.Endpoint("bench-client").LocalAddr()
	raw := make([][]byte, sessions)
	for i := range raw {
		id := uint32(i + 1)
		h.Dispatch(transport.Message{
			Type:    transport.TypeHello,
			Session: id,
			Hello:   transport.Hello{Session: id, Role: transport.RoleScreen},
			From:    from,
		})
		raw[i] = mediaDatagram(b, id, uint32(i))
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Stats().Admitted < int64(sessions) {
		if time.Now().After(deadline) {
			b.Fatal("sessions never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	return h, raw, stop
}

// BenchmarkIngest compares the full decode→dispatch→worker ingest cost
// per packet on the legacy per-packet path versus the batched path (the
// acceptance metric for the batched wire path: ns/packet and
// allocs/packet, 64 sessions across 8 shards).
func BenchmarkIngest(b *testing.B) {
	const sessions = 64
	b.Run("perpacket", func(b *testing.B) {
		h, raw, stop := benchIngestHub(b, sessions)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg, err := transport.Decode(raw[i%sessions])
			if err != nil {
				b.Fatal(err)
			}
			h.Dispatch(msg)
		}
		b.StopTimer()
		waitQuiesce(b, h, sessions)
	})
	b.Run("batched", func(b *testing.B) {
		h, raw, stop := benchIngestHub(b, sessions)
		defer stop()
		msgs := make([]transport.Message, batchSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += batchSize {
			n := batchSize
			if rem := b.N - i; rem < n {
				n = rem
			}
			for j := 0; j < n; j++ {
				if err := transport.DecodeInto(&msgs[j], raw[(i+j)%sessions]); err != nil {
					b.Fatal(err)
				}
			}
			h.DispatchBatch(msgs[:n])
		}
		waitArenasIdle(h)
		b.StopTimer()
		waitQuiesce(b, h, sessions)
	})
}

// waitQuiesce waits for the shard queues to drain after a benchmark loop
// so timers stop before teardown races the workers.
func waitQuiesce(b *testing.B, h *Hub, sessions int) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		idle := true
		for _, sh := range h.shards {
			if len(sh.queue) > 0 || len(sh.ctrl) > 0 {
				idle = false
				break
			}
		}
		if idle || time.Now().After(deadline) {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
