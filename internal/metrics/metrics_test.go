package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "a counter")
	b := r.Counter("x_total", "ignored duplicate help")
	if a != b {
		t.Fatal("re-registration must return the same counter")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatal("shared handle")
	}
}

func TestCounterGaugeMax(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter %d", c.Load())
	}
	var g Gauge
	if g.Add(3) != 3 || g.Add(-1) != 2 {
		t.Fatal("gauge add")
	}
	g.BumpMax(10)
	g.BumpMax(7) // lower: no effect
	if g.Load() != 10 {
		t.Fatalf("gauge %d", g.Load())
	}
	var m FloatMax
	m.Observe(1.5)
	m.Observe(0.5)
	m.Observe(-3) // ignored
	if m.Load() != 1.5 {
		t.Fatalf("max %g", m.Load())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ekho_packets_total", "packets seen").Add(42)
	// Labeled samples of one family, registered out of order: the render
	// must group them under one HELP/TYPE header, sorted.
	r.Counter(`ekho_shard_packets_total{shard="1"}`, "per-shard packets").Add(2)
	r.Counter(`ekho_shard_packets_total{shard="0"}`, "per-shard packets").Add(1)
	r.Gauge("ekho_sessions_active", "live sessions").Set(3)
	r.Max("ekho_isd_peak_abs_ms", "peak |ISD|").Observe(1.25)
	r.GaugeFunc("ekho_match_rate", "derived", func() float64 { return 0.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP ekho_packets_total packets seen
# TYPE ekho_packets_total counter
ekho_packets_total 42
# HELP ekho_shard_packets_total per-shard packets
# TYPE ekho_shard_packets_total counter
ekho_shard_packets_total{shard="0"} 1
ekho_shard_packets_total{shard="1"} 2
# HELP ekho_sessions_active live sessions
# TYPE ekho_sessions_active gauge
ekho_sessions_active 3
# HELP ekho_isd_peak_abs_ms peak |ISD|
# TYPE ekho_isd_peak_abs_ms gauge
ekho_isd_peak_abs_ms 1.25
# HELP ekho_match_rate derived
# TYPE ekho_match_rate gauge
ekho_match_rate 0.5
`
	if got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body %q", rec.Body.String())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		42:       "42",
		-3:       "-3",
		1.25:     "1.25",
		0.001:    "0.001",
		1e18:     "1e+18",
		123456.5: "123456.5",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if c.Load() != 4000 {
		t.Fatalf("counter %d", c.Load())
	}
}

// TestIncrementAllocFree pins the packet-path contract: bumping a
// registered metric costs one atomic op and zero allocations.
func TestIncrementAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	m := r.Max("z", "")
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		m.Observe(1)
	}); allocs != 0 {
		t.Fatalf("metric updates allocate %.1f per round", allocs)
	}
}
