// Package metrics is the hub's lock-cheap observability plane: counters,
// gauges and peak trackers that hot paths update with single atomic
// operations, collected in a Registry that renders the Prometheus text
// exposition format over HTTP. It replaces SIGHUP snapshot dumps as the
// primary way to watch a running hub.
//
// Design constraints, in order:
//
//   - increments must cost one uncontended atomic add (no map lookups,
//     no locks, no label hashing on the hot path — callers hold a
//     *Counter, resolved once at registration time);
//   - registration is rare and may take a lock;
//   - rendering walks the registry under the lock but reads each metric
//     with a single atomic load, so scrapes never stall the packet path.
//
// Metric names follow Prometheus conventions and may carry a literal
// label set chosen at registration time (e.g.
// `ekho_shard_packets_total{shard="3"}`): the registry groups samples
// into families by the name before the brace, emitting one HELP/TYPE
// header per family.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an int64 that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative) and returns the new value.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// BumpMax raises the gauge to at least v (a high-water mark).
func (g *Gauge) BumpMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatMax tracks the maximum of a stream of float64 observations (e.g.
// peak |ISD|). The zero value reads as 0.
type FloatMax struct {
	bits atomic.Uint64
}

// Observe raises the tracked maximum to at least v. Observations ≤ 0
// are ignored (the zero value doubles as "nothing observed"); callers
// tracking a peak magnitude pass math.Abs(v).
func (m *FloatMax) Observe(v float64) {
	for {
		old := m.bits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			return
		}
		if old == 0 && v <= 0 {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Load returns the maximum observed so far (0 before any observation).
func (m *FloatMax) Load() float64 { return math.Float64frombits(m.bits.Load()) }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatMax
	kindGaugeFunc
)

func (k metricKind) promType() string {
	if k == kindCounter {
		return "counter"
	}
	return "gauge"
}

type entry struct {
	name string // full sample name, possibly with {labels}
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	f    *FloatMax
	fn   func() float64
}

func (e *entry) value() float64 {
	switch e.kind {
	case kindCounter:
		return float64(e.c.Load())
	case kindGauge:
		return float64(e.g.Load())
	case kindFloatMax:
		return e.f.Load()
	default:
		return e.fn()
	}
}

// family returns the metric family: the sample name before any label set.
func (e *entry) family() string {
	if i := strings.IndexByte(e.name, '{'); i >= 0 {
		return e.name[:i]
	}
	return e.name
}

// Registry holds named metrics and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

func (r *Registry) register(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = new(Counter)
	case kindGauge:
		e.g = new(Gauge)
	case kindFloatMax:
		e.f = new(FloatMax)
	}
	r.entries = append(r.entries, e)
	r.byName[name] = e
	return e
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Max registers (or returns the existing) peak tracker under name,
// rendered as a gauge.
func (r *Registry) Max(name, help string) *FloatMax {
	return r.register(name, help, kindFloatMax).f
}

// GaugeFunc registers a derived gauge computed at scrape time. The
// function must be safe to call concurrently. Re-registering a name
// keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	e := r.register(name, help, kindGaugeFunc)
	r.mu.Lock()
	if e.fn == nil {
		e.fn = fn
	}
	r.mu.Unlock()
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), families in registration order with samples
// sorted within each family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	// Group by family, keeping first-registration order for families and
	// sorting samples inside each (stable, diffable output).
	order := make([]string, 0, len(entries))
	byFam := make(map[string][]*entry, len(entries))
	for _, e := range entries {
		fam := e.family()
		if _, ok := byFam[fam]; !ok {
			order = append(order, fam)
		}
		byFam[fam] = append(byFam[fam], e)
	}
	for _, fam := range order {
		es := byFam[fam]
		sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
		if es[0].help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, es[0].help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, es[0].kind.promType()); err != nil {
			return err
		}
		for _, e := range es {
			if _, err := fmt.Fprintf(w, "%s %s\n", e.name, formatValue(e.value())); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a sample value: integral values without an
// exponent, everything else in Go's shortest float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler serves the registry at its mount point in the Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
