// Package transport implements Ekho's wire protocol over real UDP sockets
// (net.PacketConn) for the live demo binaries: media frames downstream,
// chat audio plus dual timestamps upstream, and a small control channel.
// It mirrors the in-process simulator's payloads so the same server logic
// drives both (the simulator exercises the algorithms at scale; this
// package proves the system runs over an actual network stack).
//
// Wire format (all little-endian):
//
//	header:  magic u16 | type u8 | flags u8 | seq u32
//	media:   header | contentStart i64 | contentOff u16 | nSamples u16 | samples i16...
//	chat:    header | adcLocalMicros i64 | nRecords u16 |
//	         records {contentStart i64, localMicros i64, n u16}... |
//	         nEncoded u16 | encoded bytes...
//	hello:   header | role u8
//	marker:  header | contentStart i64   (server -> estimator internal use)
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"
)

// Magic identifies Ekho datagrams.
const Magic = 0xE509

// PacketType enumerates wire message kinds.
type PacketType uint8

// Wire message kinds.
const (
	TypeHello PacketType = iota + 1
	TypeMedia
	TypeChat
	TypeBye
)

// Role identifies an endpoint in Hello packets.
type Role uint8

// Endpoint roles.
const (
	RoleScreen Role = iota + 1
	RoleController
)

// Media is one downlink audio frame.
type Media struct {
	Seq          uint32
	ContentStart int64 // -1 for inserted silence
	ContentOff   uint16
	Samples      []int16
}

// PlaybackRecord reports accessory playback timing (§5.1: the client sends
// back playback timestamps T_j^accessory).
type PlaybackRecord struct {
	ContentStart int64
	LocalMicros  int64
	N            uint16
}

// Chat is one uplink packet: encoded microphone audio with capture
// timestamp and piggybacked playback records.
type Chat struct {
	Seq       uint32
	ADCMicros int64
	Records   []PlaybackRecord
	Encoded   []byte
}

// Hello announces an endpoint and its role.
type Hello struct {
	Seq  uint32
	Role Role
}

// ErrBadPacket reports an undecodable datagram.
var ErrBadPacket = errors.New("transport: bad packet")

// maxDatagram bounds decode allocations.
const maxDatagram = 64 * 1024

func header(t PacketType, seq uint32) []byte {
	b := make([]byte, 8, 64)
	binary.LittleEndian.PutUint16(b[0:], Magic)
	b[2] = byte(t)
	b[3] = 0
	binary.LittleEndian.PutUint32(b[4:], seq)
	return b
}

func parseHeader(b []byte) (PacketType, uint32, []byte, error) {
	if len(b) < 8 || binary.LittleEndian.Uint16(b[0:]) != Magic {
		return 0, 0, nil, ErrBadPacket
	}
	return PacketType(b[2]), binary.LittleEndian.Uint32(b[4:]), b[8:], nil
}

// EncodeMedia serializes a media frame.
func EncodeMedia(m Media) []byte {
	b := header(TypeMedia, m.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.ContentStart))
	b = binary.LittleEndian.AppendUint16(b, m.ContentOff)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Samples)))
	for _, s := range m.Samples {
		b = binary.LittleEndian.AppendUint16(b, uint16(s))
	}
	return b
}

// DecodeMedia parses a media frame body (after the header).
func DecodeMedia(seq uint32, body []byte) (Media, error) {
	if len(body) < 12 {
		return Media{}, ErrBadPacket
	}
	m := Media{Seq: seq}
	m.ContentStart = int64(binary.LittleEndian.Uint64(body[0:]))
	m.ContentOff = binary.LittleEndian.Uint16(body[8:])
	n := int(binary.LittleEndian.Uint16(body[10:]))
	body = body[12:]
	if len(body) < 2*n {
		return Media{}, fmt.Errorf("%w: media wants %d samples, has %d bytes", ErrBadPacket, n, len(body))
	}
	m.Samples = make([]int16, n)
	for i := 0; i < n; i++ {
		m.Samples[i] = int16(binary.LittleEndian.Uint16(body[2*i:]))
	}
	return m, nil
}

// EncodeChat serializes a chat packet.
func EncodeChat(c Chat) []byte {
	b := header(TypeChat, c.Seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.ADCMicros))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Records)))
	for _, r := range c.Records {
		b = binary.LittleEndian.AppendUint64(b, uint64(r.ContentStart))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.LocalMicros))
		b = binary.LittleEndian.AppendUint16(b, r.N)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Encoded)))
	b = append(b, c.Encoded...)
	return b
}

// DecodeChat parses a chat packet body.
func DecodeChat(seq uint32, body []byte) (Chat, error) {
	if len(body) < 10 {
		return Chat{}, ErrBadPacket
	}
	c := Chat{Seq: seq}
	c.ADCMicros = int64(binary.LittleEndian.Uint64(body[0:]))
	nr := int(binary.LittleEndian.Uint16(body[8:]))
	body = body[10:]
	if len(body) < nr*18 {
		return Chat{}, fmt.Errorf("%w: chat wants %d records", ErrBadPacket, nr)
	}
	for i := 0; i < nr; i++ {
		c.Records = append(c.Records, PlaybackRecord{
			ContentStart: int64(binary.LittleEndian.Uint64(body[0:])),
			LocalMicros:  int64(binary.LittleEndian.Uint64(body[8:])),
			N:            binary.LittleEndian.Uint16(body[16:]),
		})
		body = body[18:]
	}
	if len(body) < 2 {
		return Chat{}, ErrBadPacket
	}
	ne := int(binary.LittleEndian.Uint16(body[0:]))
	body = body[2:]
	if len(body) < ne {
		return Chat{}, fmt.Errorf("%w: chat wants %d encoded bytes", ErrBadPacket, ne)
	}
	c.Encoded = append([]byte(nil), body[:ne]...)
	return c, nil
}

// EncodeHello serializes a hello.
func EncodeHello(h Hello) []byte {
	b := header(TypeHello, h.Seq)
	return append(b, byte(h.Role))
}

// DecodeHello parses a hello body.
func DecodeHello(seq uint32, body []byte) (Hello, error) {
	if len(body) < 1 {
		return Hello{}, ErrBadPacket
	}
	return Hello{Seq: seq, Role: Role(body[0])}, nil
}

// Message is a decoded incoming datagram plus its sender.
type Message struct {
	Type  PacketType
	Media Media
	Chat  Chat
	Hello Hello
	From  net.Addr
}

// Decode parses any Ekho datagram.
func Decode(b []byte) (Message, error) {
	t, seq, body, err := parseHeader(b)
	if err != nil {
		return Message{}, err
	}
	msg := Message{Type: t}
	switch t {
	case TypeMedia:
		msg.Media, err = DecodeMedia(seq, body)
	case TypeChat:
		msg.Chat, err = DecodeChat(seq, body)
	case TypeHello:
		msg.Hello, err = DecodeHello(seq, body)
	case TypeBye:
	default:
		err = fmt.Errorf("%w: unknown type %d", ErrBadPacket, t)
	}
	return msg, err
}

// Conn wraps a UDP socket with Ekho framing.
type Conn struct {
	pc  net.PacketConn
	buf []byte
}

// Listen opens a UDP socket on the address (e.g. "127.0.0.1:0").
func Listen(addr string) (*Conn, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &Conn{pc: pc, buf: make([]byte, maxDatagram)}, nil
}

// LocalAddr returns the bound address.
func (c *Conn) LocalAddr() net.Addr { return c.pc.LocalAddr() }

// Close releases the socket.
func (c *Conn) Close() error { return c.pc.Close() }

// SendTo transmits an encoded datagram.
func (c *Conn) SendTo(b []byte, to net.Addr) error {
	_, err := c.pc.WriteTo(b, to)
	if err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Recv blocks (until deadline) for the next decodable datagram.
func (c *Conn) Recv(deadline time.Time) (Message, error) {
	if err := c.pc.SetReadDeadline(deadline); err != nil {
		return Message{}, fmt.Errorf("transport: deadline: %w", err)
	}
	for {
		n, from, err := c.pc.ReadFrom(c.buf)
		if err != nil {
			return Message{}, err
		}
		msg, err := Decode(c.buf[:n])
		if err != nil {
			continue // ignore stray datagrams
		}
		msg.From = from
		return msg, nil
	}
}

// ResolveUDP parses an address for SendTo.
func ResolveUDP(addr string) (net.Addr, error) {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	return a, nil
}
