// Package transport implements Ekho's wire protocol over real UDP sockets
// (net.PacketConn) for the live demo binaries: media frames downstream,
// chat audio plus dual timestamps upstream, and a small control channel.
// It mirrors the in-process simulator's payloads so the same server logic
// drives both (the simulator exercises the algorithms at scale; this
// package proves the system runs over an actual network stack).
//
// Wire format (all little-endian):
//
//	header:  magic u16 | type u8 | flags u8 | seq u32 | [session u32]
//	media:   header | contentStart i64 | contentOff u16 | nSamples u16 | samples i16...
//	chat:    header | adcLocalMicros i64 | nRecords u16 |
//	         records {contentStart i64, localMicros i64, n u16}... |
//	         nEncoded u16 | encoded bytes...
//	hello:   header | role u8
//	bye:     header
//	busy:    header | active u32 | capacity u32
//	marker:  header | contentStart i64   (server -> estimator internal use)
//
// Protocol versioning: the original (v1) header is 8 bytes with flags
// always zero. Version 2 adds a 32-bit session identifier for
// multi-tenant servers (internal/hub): when FlagSession is set in the
// flags byte, the header carries a trailing session u32. Packets with
// session 0 are encoded in the v1 format, so v1 endpoints and v2
// endpoints interoperate for the default session; unknown flag bits are
// ignored on decode for forward compatibility.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"
)

// Magic identifies Ekho datagrams.
const Magic = 0xE509

// PacketType enumerates wire message kinds.
type PacketType uint8

// Wire message kinds.
const (
	TypeHello PacketType = iota + 1
	TypeMedia
	TypeChat
	TypeBye
	// TypeBusy rejects a Hello when the server is at capacity or
	// draining (protocol v2, internal/hub).
	TypeBusy
)

// FlagSession marks a v2 header carrying a trailing session u32.
const FlagSession = 0x01

// Role identifies an endpoint in Hello packets.
type Role uint8

// Endpoint roles.
const (
	RoleScreen Role = iota + 1
	RoleController
)

// Media is one downlink audio frame.
type Media struct {
	Seq          uint32
	Session      uint32
	ContentStart int64 // -1 for inserted silence
	ContentOff   uint16
	Samples      []int16
}

// PlaybackRecord reports accessory playback timing (§5.1: the client sends
// back playback timestamps T_j^accessory).
type PlaybackRecord struct {
	ContentStart int64
	LocalMicros  int64
	N            uint16
}

// Chat is one uplink packet: encoded microphone audio with capture
// timestamp and piggybacked playback records.
type Chat struct {
	Seq       uint32
	Session   uint32
	ADCMicros int64
	Records   []PlaybackRecord
	Encoded   []byte
}

// Hello announces an endpoint and its role.
type Hello struct {
	Seq     uint32
	Session uint32
	Role    Role
}

// Bye announces that an endpoint is leaving its session.
type Bye struct {
	Seq     uint32
	Session uint32
}

// Busy rejects a Hello: the server cannot admit the session.
type Busy struct {
	Seq     uint32
	Session uint32
	// Active and Capacity report the server's load at rejection time.
	Active   uint32
	Capacity uint32
}

// ErrBadPacket reports an undecodable datagram.
var ErrBadPacket = errors.New("transport: bad packet")

// ErrOversize reports a payload that cannot be represented on the wire
// (a count exceeding its u16 field, or a datagram above the 64 KiB
// receive limit). Encoders return it instead of silently truncating.
var ErrOversize = errors.New("transport: payload exceeds wire limits")

// MaxDatagram bounds decode allocations and encoded datagram size for
// every wire codec sharing the socket (alternative codecs add their own
// header to the same payload bodies, so they share the limit).
const MaxDatagram = 64 * 1024

// maxDatagram is the internal alias used by the v2 encoders.
const maxDatagram = MaxDatagram

// MaxCount is the largest value a u16 count field can carry (sample,
// record and encoded-byte counts in the payload bodies).
const MaxCount = 1<<16 - 1

// maxCount is the internal alias used by the v2 encoders.
const maxCount = MaxCount

// Wire identifies a wire codec: how Ekho payloads are framed on the
// socket. The framing is a per-session choice made by the client's first
// packet; payload bodies are identical across codecs.
type Wire uint8

// Wire codecs.
const (
	// WireV2 is this package's native framing (the v1/v2 header above).
	WireV2 Wire = iota
	// WireRTP is standards-shaped RTP framing (internal/rtp): a 12-byte
	// RFC 3550 header carrying the same little-endian payload bodies.
	WireRTP
)

// String implements fmt.Stringer.
func (w Wire) String() string {
	switch w {
	case WireV2:
		return "v2"
	case WireRTP:
		return "rtp"
	default:
		return fmt.Sprintf("wire(%d)", uint8(w))
	}
}

// ParseWire maps a -wire flag value to a Wire.
func ParseWire(s string) (Wire, bool) {
	switch s {
	case "v2":
		return WireV2, true
	case "rtp":
		return WireRTP, true
	default:
		return 0, false
	}
}

// Decoder turns one datagram into a Message. Implementations may be
// stateful (the RTP decoder tracks per-stream sequence state), so a
// Decoder instance belongs to exactly one receive loop. DecodeInto must
// follow this package's arena contract: reuse the capacity of msg's
// payload slices, never alias b, and park the retained capacity back in
// msg on error.
type Decoder interface {
	DecodeInto(msg *Message, b []byte) error
}

// WireEncoder serializes outbound packets in one wire framing.
// Implementations are stateless and shareable across sessions: sequence
// numbers and timestamps derive from the payloads themselves, which
// keeps encodes deterministic (replay- and equivalence-friendly).
type WireEncoder interface {
	// Wire names the framing this encoder emits.
	Wire() Wire
	// AppendMedia/AppendChat append one encoded packet to dst, returning
	// the extended slice (dst unmodified on error), like AppendMedia and
	// AppendChat in this package.
	AppendMedia(dst []byte, m Media) ([]byte, error)
	AppendChat(dst []byte, c Chat) ([]byte, error)
	// Control packets are small and cannot fail to encode.
	AppendHello(dst []byte, h Hello) []byte
	AppendBye(dst []byte, b Bye) []byte
	AppendBusy(dst []byte, b Busy) []byte
}

// WireCodec is a full wire codec: both directions of one framing (or,
// for sniffing decoders, several accepted framings behind one Decoder).
type WireCodec interface {
	WireEncoder
	Decoder
}

// V2 is the native wire codec as a WireCodec value: the same stateless
// package-level encode/decode functions behind the seam interface.
type V2 struct{}

// Wire implements WireEncoder.
func (V2) Wire() Wire { return WireV2 }

// AppendMedia implements WireEncoder.
func (V2) AppendMedia(dst []byte, m Media) ([]byte, error) { return AppendMedia(dst, m) }

// AppendChat implements WireEncoder.
func (V2) AppendChat(dst []byte, c Chat) ([]byte, error) { return AppendChat(dst, c) }

// AppendHello implements WireEncoder.
func (V2) AppendHello(dst []byte, h Hello) []byte { return AppendHello(dst, h) }

// AppendBye implements WireEncoder.
func (V2) AppendBye(dst []byte, b Bye) []byte { return AppendBye(dst, b) }

// AppendBusy implements WireEncoder.
func (V2) AppendBusy(dst []byte, b Busy) []byte { return AppendBusy(dst, b) }

// DecodeInto implements Decoder.
func (V2) DecodeInto(msg *Message, b []byte) error { return DecodeInto(msg, b) }

// appendHeader appends a v1 (8-byte) or v2 (12-byte, session-flagged)
// header to dst.
func appendHeader(dst []byte, t PacketType, seq, session uint32) []byte {
	flags := byte(0)
	if session != 0 {
		flags = FlagSession
	}
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, byte(t), flags)
	dst = binary.LittleEndian.AppendUint32(dst, seq)
	if session != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, session)
	}
	return dst
}

// headerLen returns the encoded header size for the session id.
func headerLen(session uint32) int {
	if session != 0 {
		return 12
	}
	return 8
}

func parseHeader(b []byte) (t PacketType, seq, session uint32, body []byte, err error) {
	if len(b) < 8 || binary.LittleEndian.Uint16(b[0:]) != Magic {
		return 0, 0, 0, nil, ErrBadPacket
	}
	t = PacketType(b[2])
	flags := b[3]
	seq = binary.LittleEndian.Uint32(b[4:])
	body = b[8:]
	if flags&FlagSession != 0 {
		if len(body) < 4 {
			return 0, 0, 0, nil, fmt.Errorf("%w: truncated session header", ErrBadPacket)
		}
		session = binary.LittleEndian.Uint32(body)
		body = body[4:]
	}
	return t, seq, session, body, nil
}

// EncodeMedia serializes a media frame. It refuses frames whose sample
// count does not fit the wire's u16 field or whose encoding would exceed
// the datagram size limit.
func EncodeMedia(m Media) ([]byte, error) {
	return AppendMedia(nil, m)
}

// AppendMedia is EncodeMedia appending to dst and returning the extended
// slice; the per-tick send path reuses one packet buffer per session. On
// error dst is returned unmodified.
func AppendMedia(dst []byte, m Media) ([]byte, error) {
	if len(m.Samples) > maxCount {
		return dst, fmt.Errorf("%w: %d samples > %d", ErrOversize, len(m.Samples), maxCount)
	}
	if headerLen(m.Session)+12+2*len(m.Samples) > maxDatagram {
		return dst, fmt.Errorf("%w: media datagram with %d samples > %d bytes", ErrOversize, len(m.Samples), maxDatagram)
	}
	dst = appendHeader(dst, TypeMedia, m.Seq, m.Session)
	return appendMediaBody(dst, m), nil
}

// MediaBodyLen returns the encoded size of a media payload body
// (everything after the wire header, identical across codecs).
func MediaBodyLen(m Media) int { return 12 + 2*len(m.Samples) }

// AppendMediaBody appends the codec-independent media payload body to
// dst: contentStart i64 | contentOff u16 | nSamples u16 | samples i16...
// (little-endian). Alternative wire codecs prepend their own header. The
// caller is responsible for the MaxCount / datagram-size checks (see
// AppendMedia); on violation dst is returned unmodified with ErrOversize.
func AppendMediaBody(dst []byte, m Media) ([]byte, error) {
	if len(m.Samples) > maxCount {
		return dst, fmt.Errorf("%w: %d samples > %d", ErrOversize, len(m.Samples), maxCount)
	}
	return appendMediaBody(dst, m), nil
}

func appendMediaBody(dst []byte, m Media) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.ContentStart))
	dst = binary.LittleEndian.AppendUint16(dst, m.ContentOff)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Samples)))
	for _, s := range m.Samples {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(s))
	}
	return dst
}

// DecodeMedia parses a media frame body (after the header).
func DecodeMedia(seq, session uint32, body []byte) (Media, error) {
	return decodeMediaInto(nil, seq, session, body)
}

// DecodeMediaBody is decodeMediaInto for alternative wire codecs: it
// parses a codec-independent media body, appending samples onto the
// given (capacity-reused) slice. On error the retained slice is handed
// back via Media.Samples so the caller's arena slot keeps its capacity.
func DecodeMediaBody(samples []int16, seq, session uint32, body []byte) (Media, error) {
	return decodeMediaInto(samples, seq, session, body)
}

// decodeMediaInto parses a media body, appending samples onto the given
// (capacity-reused) slice. The samples are copied out of body, never
// aliased. On error the retained slice is handed back via Media.Samples
// so the caller's arena slot keeps its capacity.
func decodeMediaInto(samples []int16, seq, session uint32, body []byte) (Media, error) {
	if len(body) < 12 {
		return Media{Samples: samples}, ErrBadPacket
	}
	m := Media{Seq: seq, Session: session}
	m.ContentStart = int64(binary.LittleEndian.Uint64(body[0:]))
	m.ContentOff = binary.LittleEndian.Uint16(body[8:])
	n := int(binary.LittleEndian.Uint16(body[10:]))
	body = body[12:]
	if len(body) < 2*n {
		return Media{Samples: samples}, fmt.Errorf("%w: media wants %d samples, has %d bytes", ErrBadPacket, n, len(body))
	}
	for i := 0; i < n; i++ {
		samples = append(samples, int16(binary.LittleEndian.Uint16(body[2*i:])))
	}
	m.Samples = samples
	return m, nil
}

// EncodeChat serializes a chat packet. It refuses packets whose record or
// encoded-byte counts do not fit their u16 fields or whose encoding would
// exceed the datagram size limit.
func EncodeChat(c Chat) ([]byte, error) {
	return AppendChat(nil, c)
}

// AppendChat is EncodeChat appending to dst and returning the extended
// slice. On error dst is returned unmodified.
func AppendChat(dst []byte, c Chat) ([]byte, error) {
	if len(c.Records) > maxCount {
		return dst, fmt.Errorf("%w: %d playback records > %d", ErrOversize, len(c.Records), maxCount)
	}
	if len(c.Encoded) > maxCount {
		return dst, fmt.Errorf("%w: %d encoded bytes > %d", ErrOversize, len(c.Encoded), maxCount)
	}
	if headerLen(c.Session)+10+18*len(c.Records)+2+len(c.Encoded) > maxDatagram {
		return dst, fmt.Errorf("%w: chat datagram > %d bytes", ErrOversize, maxDatagram)
	}
	dst = appendHeader(dst, TypeChat, c.Seq, c.Session)
	return appendChatBody(dst, c), nil
}

// ChatBodyLen returns the encoded size of a chat payload body.
func ChatBodyLen(c Chat) int { return 10 + 18*len(c.Records) + 2 + len(c.Encoded) }

// AppendChatBody appends the codec-independent chat payload body to dst
// (see the package comment for the layout). Like AppendMediaBody, on a
// count violation dst is returned unmodified with ErrOversize; datagram
// sizing is the wire codec's job.
func AppendChatBody(dst []byte, c Chat) ([]byte, error) {
	if len(c.Records) > maxCount {
		return dst, fmt.Errorf("%w: %d playback records > %d", ErrOversize, len(c.Records), maxCount)
	}
	if len(c.Encoded) > maxCount {
		return dst, fmt.Errorf("%w: %d encoded bytes > %d", ErrOversize, len(c.Encoded), maxCount)
	}
	return appendChatBody(dst, c), nil
}

func appendChatBody(dst []byte, c Chat) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.ADCMicros))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c.Records)))
	for _, r := range c.Records {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.ContentStart))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.LocalMicros))
		dst = binary.LittleEndian.AppendUint16(dst, r.N)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c.Encoded)))
	dst = append(dst, c.Encoded...)
	return dst
}

// DecodeChat parses a chat packet body.
func DecodeChat(seq, session uint32, body []byte) (Chat, error) {
	return decodeChatInto(nil, nil, seq, session, body)
}

// DecodeChatBody is decodeChatInto for alternative wire codecs: it
// parses a codec-independent chat body, appending records and encoded
// bytes onto the given (capacity-reused) slices. On error the retained
// slices are handed back via the Chat fields.
func DecodeChatBody(records []PlaybackRecord, encoded []byte, seq, session uint32, body []byte) (Chat, error) {
	return decodeChatInto(records, encoded, seq, session, body)
}

// decodeChatInto parses a chat body, appending records and encoded bytes
// onto the given (capacity-reused) slices. The payload is copied out of
// body, never aliased. On error the retained slices are handed back via
// the Chat fields so the caller's arena slot keeps its capacity.
func decodeChatInto(records []PlaybackRecord, encoded []byte, seq, session uint32, body []byte) (Chat, error) {
	if len(body) < 10 {
		return Chat{Records: records, Encoded: encoded}, ErrBadPacket
	}
	c := Chat{Seq: seq, Session: session}
	c.ADCMicros = int64(binary.LittleEndian.Uint64(body[0:]))
	nr := int(binary.LittleEndian.Uint16(body[8:]))
	body = body[10:]
	if len(body) < nr*18 {
		return Chat{Records: records, Encoded: encoded}, fmt.Errorf("%w: chat wants %d records", ErrBadPacket, nr)
	}
	for i := 0; i < nr; i++ {
		records = append(records, PlaybackRecord{
			ContentStart: int64(binary.LittleEndian.Uint64(body[0:])),
			LocalMicros:  int64(binary.LittleEndian.Uint64(body[8:])),
			N:            binary.LittleEndian.Uint16(body[16:]),
		})
		body = body[18:]
	}
	if len(body) < 2 {
		return Chat{Records: records, Encoded: encoded}, ErrBadPacket
	}
	ne := int(binary.LittleEndian.Uint16(body[0:]))
	body = body[2:]
	if len(body) < ne {
		return Chat{Records: records, Encoded: encoded}, fmt.Errorf("%w: chat wants %d encoded bytes", ErrBadPacket, ne)
	}
	c.Records = records
	c.Encoded = append(encoded, body[:ne]...)
	return c, nil
}

// EncodeHello serializes a hello.
func EncodeHello(h Hello) []byte {
	return AppendHello(make([]byte, 0, 64), h)
}

// AppendHello is EncodeHello appending to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendHeader(dst, TypeHello, h.Seq, h.Session)
	return append(dst, byte(h.Role))
}

// DecodeHello parses a hello body.
func DecodeHello(seq, session uint32, body []byte) (Hello, error) {
	if len(body) < 1 {
		return Hello{}, ErrBadPacket
	}
	return Hello{Seq: seq, Session: session, Role: Role(body[0])}, nil
}

// EncodeBye serializes a bye.
func EncodeBye(b Bye) []byte {
	return AppendBye(make([]byte, 0, 64), b)
}

// AppendBye is EncodeBye appending to dst.
func AppendBye(dst []byte, b Bye) []byte {
	return appendHeader(dst, TypeBye, b.Seq, b.Session)
}

// EncodeBusy serializes a busy reject.
func EncodeBusy(b Busy) []byte {
	return AppendBusy(make([]byte, 0, 64), b)
}

// AppendBusy is EncodeBusy appending to dst.
func AppendBusy(dst []byte, b Busy) []byte {
	dst = appendHeader(dst, TypeBusy, b.Seq, b.Session)
	dst = binary.LittleEndian.AppendUint32(dst, b.Active)
	dst = binary.LittleEndian.AppendUint32(dst, b.Capacity)
	return dst
}

// DecodeBusy parses a busy body.
func DecodeBusy(seq, session uint32, body []byte) (Busy, error) {
	if len(body) < 8 {
		return Busy{}, fmt.Errorf("%w: short busy body", ErrBadPacket)
	}
	return Busy{
		Seq:      seq,
		Session:  session,
		Active:   binary.LittleEndian.Uint32(body[0:]),
		Capacity: binary.LittleEndian.Uint32(body[4:]),
	}, nil
}

// Message is a decoded incoming datagram plus its sender.
type Message struct {
	Type PacketType
	// Session is the header's session identifier (0 for v1 packets; the
	// SSRC for RTP framing).
	Session uint32
	// Wire records which framing carried the datagram, set by the
	// decoder. Servers latch it from a session's first Hello so replies
	// go back in the framing the client speaks.
	Wire  Wire
	Media Media
	Chat  Chat
	Hello Hello
	Bye   Bye
	Busy  Busy
	From  net.Addr
}

// Decode parses any Ekho datagram. The returned message owns its data:
// nothing in it aliases b, so the caller's receive buffer is free to be
// reused for the next datagram.
func Decode(b []byte) (Message, error) {
	var msg Message
	err := DecodeInto(&msg, b)
	return msg, err
}

// DecodeInto is Decode reusing msg as a decode arena: the capacity of
// msg's payload slices (Media.Samples, Chat.Records, Chat.Encoded) is
// kept across calls, so a steady-state receive loop that recycles its
// Message slots decodes without allocating. Every other field is reset.
// Like Decode, the result never aliases b. On error msg is left zeroed
// (payload capacity still retained).
func DecodeInto(msg *Message, b []byte) error {
	samples := msg.Media.Samples[:0]
	records := msg.Chat.Records[:0]
	encoded := msg.Chat.Encoded[:0]
	*msg = Message{}
	t, seq, session, body, err := parseHeader(b)
	if err != nil {
		// Park the retained capacity so the slot stays reusable.
		msg.Media.Samples, msg.Chat.Records, msg.Chat.Encoded = samples, records, encoded
		return err
	}
	msg.Type, msg.Session = t, session
	switch t {
	case TypeMedia:
		msg.Media, err = decodeMediaInto(samples, seq, session, body)
		msg.Chat.Records, msg.Chat.Encoded = records, encoded
	case TypeChat:
		msg.Chat, err = decodeChatInto(records, encoded, seq, session, body)
		msg.Media.Samples = samples
	default:
		msg.Media.Samples, msg.Chat.Records, msg.Chat.Encoded = samples, records, encoded
		switch t {
		case TypeHello:
			msg.Hello, err = DecodeHello(seq, session, body)
		case TypeBye:
			msg.Bye = Bye{Seq: seq, Session: session}
		case TypeBusy:
			msg.Busy, err = DecodeBusy(seq, session, body)
		default:
			err = fmt.Errorf("%w: unknown type %d", ErrBadPacket, t)
		}
	}
	return err
}

// Conn wraps a UDP socket with Ekho framing.
type Conn struct {
	pc  net.PacketConn
	buf []byte
	// dec decodes inbound datagrams (default: the native V2 codec).
	// SetDecoder swaps in a sniffing mux (rtp.NewCodec) to accept
	// alternative framings on the same socket.
	dec Decoder
}

// Listen opens a UDP socket on the address (e.g. "127.0.0.1:0").
func Listen(addr string) (*Conn, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &Conn{pc: pc, buf: make([]byte, maxDatagram), dec: V2{}}, nil
}

// SetDecoder replaces the framing decoder for inbound datagrams. It must
// be called before the receive loops start: the decoder may be stateful
// and is used without locking.
func (c *Conn) SetDecoder(d Decoder) {
	if d != nil {
		c.dec = d
	}
}

// LocalAddr returns the bound address.
func (c *Conn) LocalAddr() net.Addr { return c.pc.LocalAddr() }

// Close releases the socket.
func (c *Conn) Close() error { return c.pc.Close() }

// SendTo transmits an encoded datagram.
func (c *Conn) SendTo(b []byte, to net.Addr) error {
	_, err := c.pc.WriteTo(b, to)
	if err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Recv blocks (until deadline) for the next decodable datagram.
func (c *Conn) Recv(deadline time.Time) (Message, error) {
	if err := c.pc.SetReadDeadline(deadline); err != nil {
		return Message{}, fmt.Errorf("transport: deadline: %w", err)
	}
	for {
		n, from, err := c.pc.ReadFrom(c.buf)
		if err != nil {
			return Message{}, err
		}
		var msg Message
		if err := c.dec.DecodeInto(&msg, c.buf[:n]); err != nil {
			continue // ignore stray datagrams
		}
		msg.From = from
		return msg, nil
	}
}

// Packet is one outbound datagram for batched sends: an encoded wire
// buffer plus its destination.
type Packet struct {
	Buf []byte
	To  net.Addr
}

// recvDrainWindow is how long RecvBatch keeps draining the socket after
// its first datagram before handing back a partial batch. Reads inside
// the window return immediately while datagrams are queued in the kernel
// buffer, so under load the window never expires; when the socket runs
// dry it bounds the extra latency a batch can add.
const recvDrainWindow = 100 * time.Microsecond

// RecvBatch reads a burst of datagrams: one blocking read (until
// deadline), then greedy short-fuse reads until the batch fills or the
// socket runs dry. It decodes each datagram into the corresponding msgs
// slot with DecodeInto, so a caller that recycles its batch receives
// without allocating in steady state. It returns the number of slots
// filled; undecodable datagrams are skipped.
//
// From is materialized only for control packets (Hello, Bye): data-plane
// packets arrive with From == nil, keeping the hot path allocation-free
// (servers act on a data packet's session id, not its source address).
func (c *Conn) RecvBatch(deadline time.Time, msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	uc, _ := c.pc.(*net.UDPConn)
	if err := c.pc.SetReadDeadline(deadline); err != nil {
		return 0, fmt.Errorf("transport: deadline: %w", err)
	}
	n := 0
	for n < len(msgs) {
		var (
			nb   int
			ap   netip.AddrPort
			from net.Addr
			err  error
		)
		if uc != nil {
			nb, ap, err = uc.ReadFromUDPAddrPort(c.buf)
		} else {
			nb, from, err = c.pc.ReadFrom(c.buf)
		}
		if err != nil {
			if n > 0 && isDeadline(err) {
				return n, nil // batch closed by an empty socket
			}
			return n, err
		}
		if first := n == 0; first {
			// Switch to drain mode: subsequent reads return right away
			// once the kernel buffer is empty.
			if err := c.pc.SetReadDeadline(time.Now().Add(recvDrainWindow)); err != nil {
				return n, fmt.Errorf("transport: deadline: %w", err)
			}
		}
		if derr := c.dec.DecodeInto(&msgs[n], c.buf[:nb]); derr != nil {
			continue // ignore stray datagrams
		}
		switch msgs[n].Type {
		case TypeHello, TypeBye:
			if uc != nil {
				from = net.UDPAddrFromAddrPort(ap)
			}
			msgs[n].From = from
		default:
			msgs[n].From = from // nil on the UDP fast path
		}
		n++
	}
	return n, nil
}

// SendBatch transmits a burst of encoded datagrams, attempting every
// packet even after an error. It returns how many packets were sent and
// the first error encountered. Destinations that are *net.UDPAddr on a
// UDP socket take an allocation-free fast path.
func (c *Conn) SendBatch(pkts []Packet) (int, error) {
	uc, _ := c.pc.(*net.UDPConn)
	sent := 0
	var firstErr error
	for i := range pkts {
		var err error
		if ua, ok := pkts[i].To.(*net.UDPAddr); ok && uc != nil {
			// Unmap 4-in-6 so an IPv4-bound socket accepts the address.
			ap := ua.AddrPort()
			_, err = uc.WriteToUDPAddrPort(pkts[i].Buf, netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()))
		} else {
			_, err = c.pc.WriteTo(pkts[i].Buf, pkts[i].To)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: send: %w", err)
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// isDeadline reports whether err is a read-deadline expiry.
func isDeadline(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ResolveUDP parses an address for SendTo.
func ResolveUDP(addr string) (net.Addr, error) {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	return a, nil
}
