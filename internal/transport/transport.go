// Package transport implements Ekho's wire protocol over real UDP sockets
// (net.PacketConn) for the live demo binaries: media frames downstream,
// chat audio plus dual timestamps upstream, and a small control channel.
// It mirrors the in-process simulator's payloads so the same server logic
// drives both (the simulator exercises the algorithms at scale; this
// package proves the system runs over an actual network stack).
//
// Wire format (all little-endian):
//
//	header:  magic u16 | type u8 | flags u8 | seq u32 | [session u32]
//	media:   header | contentStart i64 | contentOff u16 | nSamples u16 | samples i16...
//	chat:    header | adcLocalMicros i64 | nRecords u16 |
//	         records {contentStart i64, localMicros i64, n u16}... |
//	         nEncoded u16 | encoded bytes...
//	hello:   header | role u8
//	bye:     header
//	busy:    header | active u32 | capacity u32
//	marker:  header | contentStart i64   (server -> estimator internal use)
//
// Protocol versioning: the original (v1) header is 8 bytes with flags
// always zero. Version 2 adds a 32-bit session identifier for
// multi-tenant servers (internal/hub): when FlagSession is set in the
// flags byte, the header carries a trailing session u32. Packets with
// session 0 are encoded in the v1 format, so v1 endpoints and v2
// endpoints interoperate for the default session; unknown flag bits are
// ignored on decode for forward compatibility.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"
)

// Magic identifies Ekho datagrams.
const Magic = 0xE509

// PacketType enumerates wire message kinds.
type PacketType uint8

// Wire message kinds.
const (
	TypeHello PacketType = iota + 1
	TypeMedia
	TypeChat
	TypeBye
	// TypeBusy rejects a Hello when the server is at capacity or
	// draining (protocol v2, internal/hub).
	TypeBusy
)

// FlagSession marks a v2 header carrying a trailing session u32.
const FlagSession = 0x01

// Role identifies an endpoint in Hello packets.
type Role uint8

// Endpoint roles.
const (
	RoleScreen Role = iota + 1
	RoleController
)

// Media is one downlink audio frame.
type Media struct {
	Seq          uint32
	Session      uint32
	ContentStart int64 // -1 for inserted silence
	ContentOff   uint16
	Samples      []int16
}

// PlaybackRecord reports accessory playback timing (§5.1: the client sends
// back playback timestamps T_j^accessory).
type PlaybackRecord struct {
	ContentStart int64
	LocalMicros  int64
	N            uint16
}

// Chat is one uplink packet: encoded microphone audio with capture
// timestamp and piggybacked playback records.
type Chat struct {
	Seq       uint32
	Session   uint32
	ADCMicros int64
	Records   []PlaybackRecord
	Encoded   []byte
}

// Hello announces an endpoint and its role.
type Hello struct {
	Seq     uint32
	Session uint32
	Role    Role
}

// Bye announces that an endpoint is leaving its session.
type Bye struct {
	Seq     uint32
	Session uint32
}

// Busy rejects a Hello: the server cannot admit the session.
type Busy struct {
	Seq     uint32
	Session uint32
	// Active and Capacity report the server's load at rejection time.
	Active   uint32
	Capacity uint32
}

// ErrBadPacket reports an undecodable datagram.
var ErrBadPacket = errors.New("transport: bad packet")

// ErrOversize reports a payload that cannot be represented on the wire
// (a count exceeding its u16 field, or a datagram above the 64 KiB
// receive limit). Encoders return it instead of silently truncating.
var ErrOversize = errors.New("transport: payload exceeds wire limits")

// maxDatagram bounds decode allocations and encoded datagram size.
const maxDatagram = 64 * 1024

// maxCount is the largest value a u16 count field can carry.
const maxCount = 1<<16 - 1

func header(t PacketType, seq, session uint32) []byte {
	return appendHeader(make([]byte, 0, 64), t, seq, session)
}

// appendHeader appends a v1 (8-byte) or v2 (12-byte, session-flagged)
// header to dst.
func appendHeader(dst []byte, t PacketType, seq, session uint32) []byte {
	flags := byte(0)
	if session != 0 {
		flags = FlagSession
	}
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, byte(t), flags)
	dst = binary.LittleEndian.AppendUint32(dst, seq)
	if session != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, session)
	}
	return dst
}

// headerLen returns the encoded header size for the session id.
func headerLen(session uint32) int {
	if session != 0 {
		return 12
	}
	return 8
}

func parseHeader(b []byte) (t PacketType, seq, session uint32, body []byte, err error) {
	if len(b) < 8 || binary.LittleEndian.Uint16(b[0:]) != Magic {
		return 0, 0, 0, nil, ErrBadPacket
	}
	t = PacketType(b[2])
	flags := b[3]
	seq = binary.LittleEndian.Uint32(b[4:])
	body = b[8:]
	if flags&FlagSession != 0 {
		if len(body) < 4 {
			return 0, 0, 0, nil, fmt.Errorf("%w: truncated session header", ErrBadPacket)
		}
		session = binary.LittleEndian.Uint32(body)
		body = body[4:]
	}
	return t, seq, session, body, nil
}

// EncodeMedia serializes a media frame. It refuses frames whose sample
// count does not fit the wire's u16 field or whose encoding would exceed
// the datagram size limit.
func EncodeMedia(m Media) ([]byte, error) {
	return AppendMedia(nil, m)
}

// AppendMedia is EncodeMedia appending to dst and returning the extended
// slice; the per-tick send path reuses one packet buffer per session. On
// error dst is returned unmodified.
func AppendMedia(dst []byte, m Media) ([]byte, error) {
	if len(m.Samples) > maxCount {
		return dst, fmt.Errorf("%w: %d samples > %d", ErrOversize, len(m.Samples), maxCount)
	}
	if headerLen(m.Session)+12+2*len(m.Samples) > maxDatagram {
		return dst, fmt.Errorf("%w: media datagram with %d samples > %d bytes", ErrOversize, len(m.Samples), maxDatagram)
	}
	dst = appendHeader(dst, TypeMedia, m.Seq, m.Session)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.ContentStart))
	dst = binary.LittleEndian.AppendUint16(dst, m.ContentOff)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Samples)))
	for _, s := range m.Samples {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(s))
	}
	return dst, nil
}

// DecodeMedia parses a media frame body (after the header).
func DecodeMedia(seq, session uint32, body []byte) (Media, error) {
	return decodeMediaInto(nil, seq, session, body)
}

// decodeMediaInto parses a media body, appending samples onto the given
// (capacity-reused) slice. The samples are copied out of body, never
// aliased. On error the retained slice is handed back via Media.Samples
// so the caller's arena slot keeps its capacity.
func decodeMediaInto(samples []int16, seq, session uint32, body []byte) (Media, error) {
	if len(body) < 12 {
		return Media{Samples: samples}, ErrBadPacket
	}
	m := Media{Seq: seq, Session: session}
	m.ContentStart = int64(binary.LittleEndian.Uint64(body[0:]))
	m.ContentOff = binary.LittleEndian.Uint16(body[8:])
	n := int(binary.LittleEndian.Uint16(body[10:]))
	body = body[12:]
	if len(body) < 2*n {
		return Media{Samples: samples}, fmt.Errorf("%w: media wants %d samples, has %d bytes", ErrBadPacket, n, len(body))
	}
	for i := 0; i < n; i++ {
		samples = append(samples, int16(binary.LittleEndian.Uint16(body[2*i:])))
	}
	m.Samples = samples
	return m, nil
}

// EncodeChat serializes a chat packet. It refuses packets whose record or
// encoded-byte counts do not fit their u16 fields or whose encoding would
// exceed the datagram size limit.
func EncodeChat(c Chat) ([]byte, error) {
	return AppendChat(nil, c)
}

// AppendChat is EncodeChat appending to dst and returning the extended
// slice. On error dst is returned unmodified.
func AppendChat(dst []byte, c Chat) ([]byte, error) {
	if len(c.Records) > maxCount {
		return dst, fmt.Errorf("%w: %d playback records > %d", ErrOversize, len(c.Records), maxCount)
	}
	if len(c.Encoded) > maxCount {
		return dst, fmt.Errorf("%w: %d encoded bytes > %d", ErrOversize, len(c.Encoded), maxCount)
	}
	if headerLen(c.Session)+10+18*len(c.Records)+2+len(c.Encoded) > maxDatagram {
		return dst, fmt.Errorf("%w: chat datagram > %d bytes", ErrOversize, maxDatagram)
	}
	dst = appendHeader(dst, TypeChat, c.Seq, c.Session)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.ADCMicros))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c.Records)))
	for _, r := range c.Records {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.ContentStart))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.LocalMicros))
		dst = binary.LittleEndian.AppendUint16(dst, r.N)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(c.Encoded)))
	dst = append(dst, c.Encoded...)
	return dst, nil
}

// DecodeChat parses a chat packet body.
func DecodeChat(seq, session uint32, body []byte) (Chat, error) {
	return decodeChatInto(nil, nil, seq, session, body)
}

// decodeChatInto parses a chat body, appending records and encoded bytes
// onto the given (capacity-reused) slices. The payload is copied out of
// body, never aliased. On error the retained slices are handed back via
// the Chat fields so the caller's arena slot keeps its capacity.
func decodeChatInto(records []PlaybackRecord, encoded []byte, seq, session uint32, body []byte) (Chat, error) {
	if len(body) < 10 {
		return Chat{Records: records, Encoded: encoded}, ErrBadPacket
	}
	c := Chat{Seq: seq, Session: session}
	c.ADCMicros = int64(binary.LittleEndian.Uint64(body[0:]))
	nr := int(binary.LittleEndian.Uint16(body[8:]))
	body = body[10:]
	if len(body) < nr*18 {
		return Chat{Records: records, Encoded: encoded}, fmt.Errorf("%w: chat wants %d records", ErrBadPacket, nr)
	}
	for i := 0; i < nr; i++ {
		records = append(records, PlaybackRecord{
			ContentStart: int64(binary.LittleEndian.Uint64(body[0:])),
			LocalMicros:  int64(binary.LittleEndian.Uint64(body[8:])),
			N:            binary.LittleEndian.Uint16(body[16:]),
		})
		body = body[18:]
	}
	if len(body) < 2 {
		return Chat{Records: records, Encoded: encoded}, ErrBadPacket
	}
	ne := int(binary.LittleEndian.Uint16(body[0:]))
	body = body[2:]
	if len(body) < ne {
		return Chat{Records: records, Encoded: encoded}, fmt.Errorf("%w: chat wants %d encoded bytes", ErrBadPacket, ne)
	}
	c.Records = records
	c.Encoded = append(encoded, body[:ne]...)
	return c, nil
}

// EncodeHello serializes a hello.
func EncodeHello(h Hello) []byte {
	b := header(TypeHello, h.Seq, h.Session)
	return append(b, byte(h.Role))
}

// DecodeHello parses a hello body.
func DecodeHello(seq, session uint32, body []byte) (Hello, error) {
	if len(body) < 1 {
		return Hello{}, ErrBadPacket
	}
	return Hello{Seq: seq, Session: session, Role: Role(body[0])}, nil
}

// EncodeBye serializes a bye.
func EncodeBye(b Bye) []byte {
	return header(TypeBye, b.Seq, b.Session)
}

// EncodeBusy serializes a busy reject.
func EncodeBusy(b Busy) []byte {
	h := header(TypeBusy, b.Seq, b.Session)
	h = binary.LittleEndian.AppendUint32(h, b.Active)
	h = binary.LittleEndian.AppendUint32(h, b.Capacity)
	return h
}

// DecodeBusy parses a busy body.
func DecodeBusy(seq, session uint32, body []byte) (Busy, error) {
	if len(body) < 8 {
		return Busy{}, fmt.Errorf("%w: short busy body", ErrBadPacket)
	}
	return Busy{
		Seq:      seq,
		Session:  session,
		Active:   binary.LittleEndian.Uint32(body[0:]),
		Capacity: binary.LittleEndian.Uint32(body[4:]),
	}, nil
}

// Message is a decoded incoming datagram plus its sender.
type Message struct {
	Type PacketType
	// Session is the header's session identifier (0 for v1 packets).
	Session uint32
	Media   Media
	Chat    Chat
	Hello   Hello
	Bye     Bye
	Busy    Busy
	From    net.Addr
}

// Decode parses any Ekho datagram. The returned message owns its data:
// nothing in it aliases b, so the caller's receive buffer is free to be
// reused for the next datagram.
func Decode(b []byte) (Message, error) {
	var msg Message
	err := DecodeInto(&msg, b)
	return msg, err
}

// DecodeInto is Decode reusing msg as a decode arena: the capacity of
// msg's payload slices (Media.Samples, Chat.Records, Chat.Encoded) is
// kept across calls, so a steady-state receive loop that recycles its
// Message slots decodes without allocating. Every other field is reset.
// Like Decode, the result never aliases b. On error msg is left zeroed
// (payload capacity still retained).
func DecodeInto(msg *Message, b []byte) error {
	samples := msg.Media.Samples[:0]
	records := msg.Chat.Records[:0]
	encoded := msg.Chat.Encoded[:0]
	*msg = Message{}
	t, seq, session, body, err := parseHeader(b)
	if err != nil {
		// Park the retained capacity so the slot stays reusable.
		msg.Media.Samples, msg.Chat.Records, msg.Chat.Encoded = samples, records, encoded
		return err
	}
	msg.Type, msg.Session = t, session
	switch t {
	case TypeMedia:
		msg.Media, err = decodeMediaInto(samples, seq, session, body)
		msg.Chat.Records, msg.Chat.Encoded = records, encoded
	case TypeChat:
		msg.Chat, err = decodeChatInto(records, encoded, seq, session, body)
		msg.Media.Samples = samples
	default:
		msg.Media.Samples, msg.Chat.Records, msg.Chat.Encoded = samples, records, encoded
		switch t {
		case TypeHello:
			msg.Hello, err = DecodeHello(seq, session, body)
		case TypeBye:
			msg.Bye = Bye{Seq: seq, Session: session}
		case TypeBusy:
			msg.Busy, err = DecodeBusy(seq, session, body)
		default:
			err = fmt.Errorf("%w: unknown type %d", ErrBadPacket, t)
		}
	}
	return err
}

// Conn wraps a UDP socket with Ekho framing.
type Conn struct {
	pc  net.PacketConn
	buf []byte
}

// Listen opens a UDP socket on the address (e.g. "127.0.0.1:0").
func Listen(addr string) (*Conn, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &Conn{pc: pc, buf: make([]byte, maxDatagram)}, nil
}

// LocalAddr returns the bound address.
func (c *Conn) LocalAddr() net.Addr { return c.pc.LocalAddr() }

// Close releases the socket.
func (c *Conn) Close() error { return c.pc.Close() }

// SendTo transmits an encoded datagram.
func (c *Conn) SendTo(b []byte, to net.Addr) error {
	_, err := c.pc.WriteTo(b, to)
	if err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

// Recv blocks (until deadline) for the next decodable datagram.
func (c *Conn) Recv(deadline time.Time) (Message, error) {
	if err := c.pc.SetReadDeadline(deadline); err != nil {
		return Message{}, fmt.Errorf("transport: deadline: %w", err)
	}
	for {
		n, from, err := c.pc.ReadFrom(c.buf)
		if err != nil {
			return Message{}, err
		}
		msg, err := Decode(c.buf[:n])
		if err != nil {
			continue // ignore stray datagrams
		}
		msg.From = from
		return msg, nil
	}
}

// Packet is one outbound datagram for batched sends: an encoded wire
// buffer plus its destination.
type Packet struct {
	Buf []byte
	To  net.Addr
}

// recvDrainWindow is how long RecvBatch keeps draining the socket after
// its first datagram before handing back a partial batch. Reads inside
// the window return immediately while datagrams are queued in the kernel
// buffer, so under load the window never expires; when the socket runs
// dry it bounds the extra latency a batch can add.
const recvDrainWindow = 100 * time.Microsecond

// RecvBatch reads a burst of datagrams: one blocking read (until
// deadline), then greedy short-fuse reads until the batch fills or the
// socket runs dry. It decodes each datagram into the corresponding msgs
// slot with DecodeInto, so a caller that recycles its batch receives
// without allocating in steady state. It returns the number of slots
// filled; undecodable datagrams are skipped.
//
// From is materialized only for control packets (Hello, Bye): data-plane
// packets arrive with From == nil, keeping the hot path allocation-free
// (servers act on a data packet's session id, not its source address).
func (c *Conn) RecvBatch(deadline time.Time, msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	uc, _ := c.pc.(*net.UDPConn)
	if err := c.pc.SetReadDeadline(deadline); err != nil {
		return 0, fmt.Errorf("transport: deadline: %w", err)
	}
	n := 0
	for n < len(msgs) {
		var (
			nb   int
			ap   netip.AddrPort
			from net.Addr
			err  error
		)
		if uc != nil {
			nb, ap, err = uc.ReadFromUDPAddrPort(c.buf)
		} else {
			nb, from, err = c.pc.ReadFrom(c.buf)
		}
		if err != nil {
			if n > 0 && isDeadline(err) {
				return n, nil // batch closed by an empty socket
			}
			return n, err
		}
		if first := n == 0; first {
			// Switch to drain mode: subsequent reads return right away
			// once the kernel buffer is empty.
			if err := c.pc.SetReadDeadline(time.Now().Add(recvDrainWindow)); err != nil {
				return n, fmt.Errorf("transport: deadline: %w", err)
			}
		}
		if derr := DecodeInto(&msgs[n], c.buf[:nb]); derr != nil {
			continue // ignore stray datagrams
		}
		switch msgs[n].Type {
		case TypeHello, TypeBye:
			if uc != nil {
				from = net.UDPAddrFromAddrPort(ap)
			}
			msgs[n].From = from
		default:
			msgs[n].From = from // nil on the UDP fast path
		}
		n++
	}
	return n, nil
}

// SendBatch transmits a burst of encoded datagrams, attempting every
// packet even after an error. It returns how many packets were sent and
// the first error encountered. Destinations that are *net.UDPAddr on a
// UDP socket take an allocation-free fast path.
func (c *Conn) SendBatch(pkts []Packet) (int, error) {
	uc, _ := c.pc.(*net.UDPConn)
	sent := 0
	var firstErr error
	for i := range pkts {
		var err error
		if ua, ok := pkts[i].To.(*net.UDPAddr); ok && uc != nil {
			// Unmap 4-in-6 so an IPv4-bound socket accepts the address.
			ap := ua.AddrPort()
			_, err = uc.WriteToUDPAddrPort(pkts[i].Buf, netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()))
		} else {
			_, err = c.pc.WriteTo(pkts[i].Buf, pkts[i].To)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: send: %w", err)
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// isDeadline reports whether err is a read-deadline expiry.
func isDeadline(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// ResolveUDP parses an address for SendTo.
func ResolveUDP(addr string) (net.Addr, error) {
	a, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	return a, nil
}
