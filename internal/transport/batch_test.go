package transport

import (
	"net"
	"testing"
	"time"
)

// mediaPacket builds an encoded media datagram for decode tests.
func mediaPacket(t *testing.T, session uint32, seq uint32, nsamples int) []byte {
	t.Helper()
	samples := make([]int16, nsamples)
	for i := range samples {
		samples[i] = int16(i*31 + int(seq))
	}
	b, err := EncodeMedia(Media{Seq: seq, Session: session, ContentStart: 960 * int64(seq), Samples: samples})
	if err != nil {
		t.Fatalf("EncodeMedia: %v", err)
	}
	return b
}

func chatPacket(t *testing.T, session uint32, seq uint32) []byte {
	t.Helper()
	b, err := EncodeChat(Chat{
		Seq: seq, Session: session, ADCMicros: 123456,
		Records: []PlaybackRecord{{ContentStart: 10, LocalMicros: 20, N: 960}, {ContentStart: 970, LocalMicros: 40020, N: 960}},
		Encoded: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	})
	if err != nil {
		t.Fatalf("EncodeChat: %v", err)
	}
	return b
}

// TestDecodeDoesNotAliasReceiveBuffer is the guarantee the batched
// receive path depends on: Recv and RecvBatch reuse one receive buffer
// (and MemNet recycles datagram slabs), so a decoded message must own
// copies of every payload — mutating the wire bytes after decode must
// not corrupt the message.
func TestDecodeDoesNotAliasReceiveBuffer(t *testing.T) {
	media := mediaPacket(t, 7, 3, 96)
	chat := chatPacket(t, 7, 4)

	mm, err := Decode(media)
	if err != nil {
		t.Fatalf("Decode(media): %v", err)
	}
	cm, err := Decode(chat)
	if err != nil {
		t.Fatalf("Decode(chat): %v", err)
	}
	wantSamples := append([]int16(nil), mm.Media.Samples...)
	wantRecords := append([]PlaybackRecord(nil), cm.Chat.Records...)
	wantEncoded := append([]byte(nil), cm.Chat.Encoded...)

	// Scribble over both receive buffers end to end.
	for i := range media {
		media[i] = ^media[i]
	}
	for i := range chat {
		chat[i] = ^chat[i]
	}

	for i, s := range mm.Media.Samples {
		if s != wantSamples[i] {
			t.Fatalf("media sample %d corrupted after buffer mutation: got %d, want %d", i, s, wantSamples[i])
		}
	}
	for i, r := range cm.Chat.Records {
		if r != wantRecords[i] {
			t.Fatalf("chat record %d corrupted after buffer mutation: got %+v, want %+v", i, r, wantRecords[i])
		}
	}
	for i, e := range cm.Chat.Encoded {
		if e != wantEncoded[i] {
			t.Fatalf("chat encoded byte %d corrupted after buffer mutation: got %d, want %d", i, e, wantEncoded[i])
		}
	}
}

// TestDecodeIntoReusesCapacity verifies the arena contract: decoding a
// stream of packets into one Message slot keeps reusing the slot's
// payload capacity (no per-packet growth) and resets every field, even
// across packet types and after decode errors.
func TestDecodeIntoReusesCapacity(t *testing.T) {
	var msg Message
	media := mediaPacket(t, 9, 1, 960)
	if err := DecodeInto(&msg, media); err != nil {
		t.Fatalf("DecodeInto(media): %v", err)
	}
	if len(msg.Media.Samples) != 960 {
		t.Fatalf("decoded %d samples, want 960", len(msg.Media.Samples))
	}
	samplesCap := cap(msg.Media.Samples)

	chat := chatPacket(t, 9, 2)
	if err := DecodeInto(&msg, chat); err != nil {
		t.Fatalf("DecodeInto(chat): %v", err)
	}
	if msg.Type != TypeChat || len(msg.Chat.Records) != 2 || len(msg.Chat.Encoded) != 8 {
		t.Fatalf("chat decode into reused slot: %+v", msg)
	}
	if len(msg.Media.Samples) != 0 {
		t.Fatalf("stale media samples survived a chat decode: %d", len(msg.Media.Samples))
	}
	if cap(msg.Media.Samples) != samplesCap {
		t.Fatalf("media capacity lost across a chat decode: %d -> %d", samplesCap, cap(msg.Media.Samples))
	}
	recordsCap, encodedCap := cap(msg.Chat.Records), cap(msg.Chat.Encoded)

	if err := DecodeInto(&msg, []byte{0xde, 0xad}); err == nil {
		t.Fatal("DecodeInto accepted garbage")
	}
	if cap(msg.Media.Samples) != samplesCap || cap(msg.Chat.Records) != recordsCap || cap(msg.Chat.Encoded) != encodedCap {
		t.Fatal("payload capacity lost after a decode error")
	}

	if err := DecodeInto(&msg, media); err != nil {
		t.Fatalf("DecodeInto(media) after error: %v", err)
	}
	if cap(msg.Media.Samples) != samplesCap {
		t.Fatalf("media decode reallocated: cap %d -> %d", samplesCap, cap(msg.Media.Samples))
	}
	if msg.Chat.Seq != 0 || msg.Chat.ADCMicros != 0 || len(msg.Chat.Records) != 0 || len(msg.Chat.Encoded) != 0 {
		t.Fatalf("stale chat fields survived a media decode: %+v", msg.Chat)
	}
	if testing.AllocsPerRun(100, func() {
		if err := DecodeInto(&msg, media); err != nil {
			t.Fatal(err)
		}
	}) != 0 {
		t.Error("DecodeInto allocates in steady state")
	}
}

// TestRecvSendBatchUDP round-trips a burst over real loopback UDP
// sockets: SendBatch pushes a full batch, RecvBatch drains it with the
// greedy short-fuse read loop, preserving per-sender packet order.
func TestRecvSendBatchUDP(t *testing.T) {
	server, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen server: %v", err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen client: %v", err)
	}
	defer client.Close()

	const burst = 16
	pkts := make([]Packet, 0, burst)
	for seq := uint32(0); seq < burst; seq++ {
		pkts = append(pkts, Packet{Buf: mediaPacket(t, 5, seq, 48), To: server.LocalAddr()})
	}
	// A hello rides along so the control-packet From contract is covered.
	pkts = append(pkts, Packet{Buf: EncodeHello(Hello{Session: 5, Role: RoleScreen}), To: server.LocalAddr()})
	if sent, err := client.SendBatch(pkts); err != nil || sent != len(pkts) {
		t.Fatalf("SendBatch sent %d/%d: %v", sent, len(pkts), err)
	}

	msgs := make([]Message, 8)
	got := 0
	var lastSeq int64 = -1
	deadline := time.Now().Add(5 * time.Second)
	for got < burst+1 && time.Now().Before(deadline) {
		n, err := server.RecvBatch(time.Now().Add(time.Second), msgs)
		if err != nil {
			t.Fatalf("RecvBatch: %v", err)
		}
		for i := 0; i < n; i++ {
			switch msgs[i].Type {
			case TypeMedia:
				if msgs[i].From != nil {
					t.Errorf("media packet materialized From=%v on the UDP fast path", msgs[i].From)
				}
				if int64(msgs[i].Media.Seq) <= lastSeq {
					t.Errorf("media reordered within sender: seq %d after %d", msgs[i].Media.Seq, lastSeq)
				}
				lastSeq = int64(msgs[i].Media.Seq)
			case TypeHello:
				if msgs[i].From == nil {
					t.Error("hello arrived without From")
				} else if _, ok := msgs[i].From.(*net.UDPAddr); !ok {
					t.Errorf("hello From is %T, want *net.UDPAddr", msgs[i].From)
				}
			}
			got++
		}
	}
	if got != burst+1 {
		t.Fatalf("received %d packets, want %d", got, burst+1)
	}
}

// TestRecvBatchAllocFree locks in the zero-allocation steady state of
// the batched UDP receive and send path: after warmup, a full
// send-batch/recv-batch cycle over real sockets performs no heap
// allocations on either side.
func TestRecvBatchAllocFree(t *testing.T) {
	server, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen server: %v", err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen client: %v", err)
	}
	defer client.Close()

	const burst = 8
	to, err := net.ResolveUDPAddr("udp", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]Packet, burst)
	for seq := uint32(0); seq < burst; seq++ {
		pkts[seq] = Packet{Buf: mediaPacket(t, 5, seq, 480), To: to}
	}
	msgs := make([]Message, burst)
	cycle := func() {
		if sent, err := client.SendBatch(pkts); err != nil || sent != burst {
			t.Fatalf("SendBatch sent %d/%d: %v", sent, burst, err)
		}
		got := 0
		for got < burst {
			n, err := server.RecvBatch(time.Now().Add(time.Second), msgs[:burst-got])
			if err != nil {
				t.Fatalf("RecvBatch: %v", err)
			}
			if n == 0 {
				t.Fatal("RecvBatch returned empty batch before burst completed")
			}
			got += n
		}
	}
	cycle() // warmup: deadline timers, decode arenas
	if allocs := testing.AllocsPerRun(50, cycle); allocs > 0 {
		t.Errorf("batched UDP send+recv cycle allocates %.1f times per burst, want 0", allocs)
	}
}
