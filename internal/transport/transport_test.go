package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mustMedia(t testing.TB, m Media) []byte {
	t.Helper()
	b, err := EncodeMedia(m)
	if err != nil {
		t.Fatalf("EncodeMedia: %v", err)
	}
	return b
}

func mustChat(t testing.TB, c Chat) []byte {
	t.Helper()
	b, err := EncodeChat(c)
	if err != nil {
		t.Fatalf("EncodeChat: %v", err)
	}
	return b
}

func TestMediaRoundTrip(t *testing.T) {
	m := Media{Seq: 42, ContentStart: 123456789, ContentOff: 100, Samples: []int16{1, -2, 32767, -32768}}
	msg, err := Decode(mustMedia(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeMedia {
		t.Fatal("type")
	}
	got := msg.Media
	if got.Seq != m.Seq || got.ContentStart != m.ContentStart || got.ContentOff != m.ContentOff {
		t.Fatalf("header fields: %+v", got)
	}
	for i := range m.Samples {
		if got.Samples[i] != m.Samples[i] {
			t.Fatalf("samples: %v", got.Samples)
		}
	}
}

func TestMediaSilenceSentinel(t *testing.T) {
	m := Media{Seq: 1, ContentStart: -1, Samples: []int16{0, 0}}
	msg, err := Decode(mustMedia(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Media.ContentStart != -1 {
		t.Fatalf("silence sentinel lost: %d", msg.Media.ContentStart)
	}
}

func TestChatRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := Chat{
			Seq:       r.Uint32(),
			Session:   r.Uint32(),
			ADCMicros: r.Int63() - r.Int63(),
		}
		for i := 0; i < r.Intn(5); i++ {
			c.Records = append(c.Records, PlaybackRecord{
				ContentStart: r.Int63(),
				LocalMicros:  r.Int63(),
				N:            uint16(r.Intn(2000)),
			})
		}
		enc := make([]byte, r.Intn(500))
		r.Read(enc)
		c.Encoded = enc
		b, err := EncodeChat(c)
		if err != nil {
			return false
		}
		msg, err := Decode(b)
		if err != nil || msg.Type != TypeChat {
			return false
		}
		g := msg.Chat
		if g.Seq != c.Seq || g.Session != c.Session || g.ADCMicros != c.ADCMicros || len(g.Records) != len(c.Records) {
			return false
		}
		if msg.Session != c.Session {
			return false
		}
		for i := range c.Records {
			if g.Records[i] != c.Records[i] {
				return false
			}
		}
		if len(g.Encoded) != len(c.Encoded) {
			return false
		}
		for i := range c.Encoded {
			if g.Encoded[i] != c.Encoded[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	msg, err := Decode(EncodeHello(Hello{Seq: 7, Role: RoleController}))
	if err != nil || msg.Hello.Role != RoleController || msg.Hello.Seq != 7 {
		t.Fatalf("hello: %+v err %v", msg, err)
	}
	if msg.Session != 0 || msg.Hello.Session != 0 {
		t.Fatalf("v1 hello must decode with session 0: %+v", msg)
	}
}

func TestHelloSessionRoundTrip(t *testing.T) {
	b := EncodeHello(Hello{Seq: 7, Session: 0xDEADBEEF, Role: RoleScreen})
	if b[3]&FlagSession == 0 {
		t.Fatal("session hello must set FlagSession")
	}
	msg, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Session != 0xDEADBEEF || msg.Hello.Session != 0xDEADBEEF || msg.Hello.Role != RoleScreen || msg.Hello.Seq != 7 {
		t.Fatalf("v2 hello: %+v", msg)
	}
}

func TestByeRoundTrip(t *testing.T) {
	for _, session := range []uint32{0, 99} {
		msg, err := Decode(EncodeBye(Bye{Seq: 3, Session: session}))
		if err != nil {
			t.Fatal(err)
		}
		if msg.Type != TypeBye || msg.Bye.Seq != 3 || msg.Bye.Session != session {
			t.Fatalf("bye (session %d): %+v", session, msg)
		}
	}
}

func TestBusyRoundTrip(t *testing.T) {
	b := Busy{Seq: 1, Session: 65, Active: 64, Capacity: 64}
	msg, err := Decode(EncodeBusy(b))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeBusy || msg.Busy != b {
		t.Fatalf("busy: %+v", msg)
	}
	// Truncated busy body must error, not panic.
	if _, err := Decode(EncodeBusy(b)[:14]); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("truncated busy: %v", err)
	}
}

// TestV1HeaderCompat pins the on-wire backward compatibility: session-0
// packets must be byte-identical to the v1 format (8-byte header, zero
// flags), and hand-built v1 datagrams must decode.
func TestV1HeaderCompat(t *testing.T) {
	b := mustMedia(t, Media{Seq: 9, ContentStart: 960, Samples: []int16{5}})
	if b[3] != 0 {
		t.Fatalf("session-0 media must keep v1 zero flags, got %#x", b[3])
	}
	// Hand-built v1 hello: magic | type | flags=0 | seq.
	v1 := make([]byte, 9)
	binary.LittleEndian.PutUint16(v1[0:], Magic)
	v1[2] = byte(TypeHello)
	binary.LittleEndian.PutUint32(v1[4:], 11)
	v1[8] = byte(RoleScreen)
	msg, err := Decode(v1)
	if err != nil || msg.Hello.Seq != 11 || msg.Hello.Role != RoleScreen || msg.Session != 0 {
		t.Fatalf("v1 hello decode: %+v err %v", msg, err)
	}
	// The same payload with FlagSession set and a session id appended
	// must carry the id.
	b2 := EncodeHello(Hello{Seq: 11, Session: 5, Role: RoleScreen})
	msg2, err := Decode(b2)
	if err != nil || msg2.Session != 5 {
		t.Fatalf("v2 hello decode: %+v err %v", msg2, err)
	}
	// A v2 header truncated before its session id is a bad packet.
	if _, err := Decode(b2[:8]); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("truncated v2 header: %v", err)
	}
}

func TestSessionRoundTripAllTypes(t *testing.T) {
	const sid = 7
	media := mustMedia(t, Media{Seq: 1, Session: sid, ContentStart: 5, Samples: []int16{1, 2}})
	chat := mustChat(t, Chat{Seq: 2, Session: sid, ADCMicros: 3, Encoded: []byte{4}})
	for _, b := range [][]byte{
		media,
		chat,
		EncodeHello(Hello{Seq: 3, Session: sid, Role: RoleController}),
		EncodeBye(Bye{Seq: 4, Session: sid}),
		EncodeBusy(Busy{Seq: 5, Session: sid, Active: 1, Capacity: 2}),
	} {
		msg, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Session != sid {
			t.Fatalf("type %d lost session: %+v", msg.Type, msg)
		}
	}
}

func TestEncodeMediaOversize(t *testing.T) {
	// More samples than the u16 count field can hold.
	if _, err := EncodeMedia(Media{Samples: make([]int16, 70000)}); !errors.Is(err, ErrOversize) {
		t.Fatalf("70000 samples: want ErrOversize, got %v", err)
	}
	// Fits u16 but overflows the datagram limit.
	if _, err := EncodeMedia(Media{Samples: make([]int16, 40000)}); !errors.Is(err, ErrOversize) {
		t.Fatalf("40000 samples: want ErrOversize, got %v", err)
	}
	// A max-size legal frame still encodes.
	if _, err := EncodeMedia(Media{Samples: make([]int16, 32000)}); err != nil {
		t.Fatalf("32000 samples should encode: %v", err)
	}
}

func TestEncodeChatOversize(t *testing.T) {
	if _, err := EncodeChat(Chat{Encoded: make([]byte, 70000)}); !errors.Is(err, ErrOversize) {
		t.Fatalf("70000 encoded bytes: want ErrOversize, got %v", err)
	}
	if _, err := EncodeChat(Chat{Records: make([]PlaybackRecord, 70000)}); !errors.Is(err, ErrOversize) {
		t.Fatalf("70000 records: want ErrOversize, got %v", err)
	}
	// 4000 records × 18 B ≈ 72 KiB: fits u16 but not a datagram.
	if _, err := EncodeChat(Chat{Records: make([]PlaybackRecord, 4000)}); !errors.Is(err, ErrOversize) {
		t.Fatalf("4000 records: want ErrOversize, got %v", err)
	}
	if _, err := EncodeChat(Chat{Records: make([]PlaybackRecord, 100), Encoded: make([]byte, 1000)}); err != nil {
		t.Fatalf("legal chat should encode: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 2, 3, 4, 5, 6, 7, 8}, make([]byte, 8)} {
		if _, err := Decode(b); !errors.Is(err, ErrBadPacket) {
			t.Fatalf("expected ErrBadPacket for %v, got %v", b, err)
		}
	}
	// Valid header, truncated body.
	m := mustMedia(t, Media{Seq: 1, Samples: make([]int16, 100)})
	if _, err := Decode(m[:20]); err == nil {
		t.Fatal("truncated media should fail")
	}
	c := mustChat(t, Chat{Seq: 1, Encoded: make([]byte, 50)})
	if _, err := Decode(c[:12]); err == nil {
		t.Fatal("truncated chat should fail")
	}
}

// TestReEncodeStability: decoding then re-encoding a well-formed packet
// reproduces the original bytes for every packet type, v1 and v2.
func TestReEncodeStability(t *testing.T) {
	packets := [][]byte{
		mustMedia(t, Media{Seq: 1, ContentStart: 960, ContentOff: 3, Samples: []int16{9, -9}}),
		mustMedia(t, Media{Seq: 1, Session: 12, ContentStart: 960, Samples: []int16{9}}),
		mustChat(t, Chat{Seq: 2, ADCMicros: 7, Records: []PlaybackRecord{{1, 2, 3}}, Encoded: []byte{1}}),
		mustChat(t, Chat{Seq: 2, Session: 12, ADCMicros: 7, Encoded: []byte{1, 2}}),
		EncodeHello(Hello{Seq: 3, Role: RoleScreen}),
		EncodeHello(Hello{Seq: 3, Session: 12, Role: RoleScreen}),
		EncodeBye(Bye{Seq: 4, Session: 12}),
		EncodeBusy(Busy{Seq: 5, Session: 12, Active: 64, Capacity: 64}),
	}
	for i, b := range packets {
		msg, err := Decode(b)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		var out []byte
		switch msg.Type {
		case TypeMedia:
			out = mustMedia(t, msg.Media)
		case TypeChat:
			out = mustChat(t, msg.Chat)
		case TypeHello:
			out = EncodeHello(msg.Hello)
		case TypeBye:
			out = EncodeBye(msg.Bye)
		case TypeBusy:
			out = EncodeBusy(msg.Busy)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("packet %d re-encode mismatch:\n in %x\nout %x", i, b, out)
		}
	}
}

func TestUDPLoopback(t *testing.T) {
	server, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	serverAddr, err := ResolveUDP(server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendTo(EncodeHello(Hello{Seq: 1, Role: RoleScreen}), serverAddr); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeHello || msg.Hello.Role != RoleScreen {
		t.Fatalf("got %+v", msg)
	}
	// Reply with media to the observed source address.
	media := Media{Seq: 9, ContentStart: 960, Samples: []int16{5, 6, 7}}
	if err := server.SendTo(mustMedia(t, media), msg.From); err != nil {
		t.Fatal(err)
	}
	back, err := client.Recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != TypeMedia || back.Media.Seq != 9 || back.Media.Samples[2] != 7 {
		t.Fatalf("media back: %+v", back)
	}
}

func TestRecvSkipsStrayDatagrams(t *testing.T) {
	server, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	addr, _ := ResolveUDP(server.LocalAddr().String())
	// Garbage first, then a valid packet.
	if err := client.SendTo([]byte("not ekho"), addr); err != nil {
		t.Fatal(err)
	}
	if err := client.SendTo(EncodeHello(Hello{Seq: 2, Role: RoleController}), addr); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeHello {
		t.Fatalf("expected hello after skipping garbage, got %+v", msg)
	}
}
