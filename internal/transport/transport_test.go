package transport

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMediaRoundTrip(t *testing.T) {
	m := Media{Seq: 42, ContentStart: 123456789, ContentOff: 100, Samples: []int16{1, -2, 32767, -32768}}
	msg, err := Decode(EncodeMedia(m))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeMedia {
		t.Fatal("type")
	}
	got := msg.Media
	if got.Seq != m.Seq || got.ContentStart != m.ContentStart || got.ContentOff != m.ContentOff {
		t.Fatalf("header fields: %+v", got)
	}
	for i := range m.Samples {
		if got.Samples[i] != m.Samples[i] {
			t.Fatalf("samples: %v", got.Samples)
		}
	}
}

func TestMediaSilenceSentinel(t *testing.T) {
	m := Media{Seq: 1, ContentStart: -1, Samples: []int16{0, 0}}
	msg, err := Decode(EncodeMedia(m))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Media.ContentStart != -1 {
		t.Fatalf("silence sentinel lost: %d", msg.Media.ContentStart)
	}
}

func TestChatRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := Chat{
			Seq:       r.Uint32(),
			ADCMicros: r.Int63() - r.Int63(),
		}
		for i := 0; i < r.Intn(5); i++ {
			c.Records = append(c.Records, PlaybackRecord{
				ContentStart: r.Int63(),
				LocalMicros:  r.Int63(),
				N:            uint16(r.Intn(2000)),
			})
		}
		enc := make([]byte, r.Intn(500))
		r.Read(enc)
		c.Encoded = enc
		msg, err := Decode(EncodeChat(c))
		if err != nil || msg.Type != TypeChat {
			return false
		}
		g := msg.Chat
		if g.Seq != c.Seq || g.ADCMicros != c.ADCMicros || len(g.Records) != len(c.Records) {
			return false
		}
		for i := range c.Records {
			if g.Records[i] != c.Records[i] {
				return false
			}
		}
		if len(g.Encoded) != len(c.Encoded) {
			return false
		}
		for i := range c.Encoded {
			if g.Encoded[i] != c.Encoded[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	msg, err := Decode(EncodeHello(Hello{Seq: 7, Role: RoleController}))
	if err != nil || msg.Hello.Role != RoleController || msg.Hello.Seq != 7 {
		t.Fatalf("hello: %+v err %v", msg, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, {1, 2, 3, 4, 5, 6, 7, 8}, make([]byte, 8)} {
		if _, err := Decode(b); !errors.Is(err, ErrBadPacket) {
			t.Fatalf("expected ErrBadPacket for %v, got %v", b, err)
		}
	}
	// Valid header, truncated body.
	m := EncodeMedia(Media{Seq: 1, Samples: make([]int16, 100)})
	if _, err := Decode(m[:20]); err == nil {
		t.Fatal("truncated media should fail")
	}
	c := EncodeChat(Chat{Seq: 1, Encoded: make([]byte, 50)})
	if _, err := Decode(c[:12]); err == nil {
		t.Fatal("truncated chat should fail")
	}
}

func TestUDPLoopback(t *testing.T) {
	server, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	serverAddr, err := ResolveUDP(server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendTo(EncodeHello(Hello{Seq: 1, Role: RoleScreen}), serverAddr); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeHello || msg.Hello.Role != RoleScreen {
		t.Fatalf("got %+v", msg)
	}
	// Reply with media to the observed source address.
	media := Media{Seq: 9, ContentStart: 960, Samples: []int16{5, 6, 7}}
	if err := server.SendTo(EncodeMedia(media), msg.From); err != nil {
		t.Fatal(err)
	}
	back, err := client.Recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != TypeMedia || back.Media.Seq != 9 || back.Media.Samples[2] != 7 {
		t.Fatalf("media back: %+v", back)
	}
}

func TestRecvSkipsStrayDatagrams(t *testing.T) {
	server, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	addr, _ := ResolveUDP(server.LocalAddr().String())
	// Garbage first, then a valid packet.
	if err := client.SendTo([]byte("not ekho"), addr); err != nil {
		t.Fatal(err)
	}
	if err := client.SendTo(EncodeHello(Hello{Seq: 2, Role: RoleController}), addr); err != nil {
		t.Fatal(err)
	}
	msg, err := server.Recv(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TypeHello {
		t.Fatalf("expected hello after skipping garbage, got %+v", msg)
	}
}
