package transport

import (
	"bytes"
	"testing"
)

func sampleMedia(session uint32) Media {
	samples := make([]int16, 960)
	for i := range samples {
		samples[i] = int16(i*37 - 500)
	}
	return Media{Seq: 42, Session: session, ContentStart: 123456, ContentOff: 7, Samples: samples}
}

func sampleChat(session uint32) Chat {
	return Chat{
		Seq:       9,
		Session:   session,
		ADCMicros: 987654321,
		Records: []PlaybackRecord{
			{ContentStart: 1000, LocalMicros: 2000, N: 960},
			{ContentStart: 1960, LocalMicros: 2960, N: 960},
		},
		Encoded: bytes.Repeat([]byte{0xAB}, 300),
	}
}

// TestAppendMatchesEncode checks the append-style encoders produce
// byte-identical datagrams to the allocating ones, for both v1 (session 0)
// and v2 headers.
func TestAppendMatchesEncode(t *testing.T) {
	for _, session := range []uint32{0, 77} {
		m := sampleMedia(session)
		want, err := EncodeMedia(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendMedia(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("session %d: AppendMedia differs from EncodeMedia", session)
		}
		// Appending after a prefix leaves the prefix intact.
		pre := []byte{1, 2, 3}
		got, err = AppendMedia(pre, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:3], pre) || !bytes.Equal(got[3:], want) {
			t.Fatalf("session %d: AppendMedia with prefix corrupted output", session)
		}

		c := sampleChat(session)
		wantC, err := EncodeChat(c)
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := AppendChat(nil, c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotC, wantC) {
			t.Fatalf("session %d: AppendChat differs from EncodeChat", session)
		}
	}
}

// TestAppendOversizeLeavesDstUnchanged checks the error contract: on
// refusal the destination comes back unmodified.
func TestAppendOversizeLeavesDstUnchanged(t *testing.T) {
	dst := []byte{9, 9}
	m := Media{Samples: make([]int16, 40000)} // 80 KB > maxDatagram
	out, err := AppendMedia(dst, m)
	if err == nil {
		t.Fatal("want oversize error")
	}
	if !bytes.Equal(out, dst) {
		t.Fatal("dst modified on error")
	}
	c := Chat{Encoded: make([]byte, maxCount+1)}
	out, err = AppendChat(dst, c)
	if err == nil {
		t.Fatal("want oversize error")
	}
	if !bytes.Equal(out, dst) {
		t.Fatal("dst modified on error")
	}
}

// TestAppendZeroAlloc asserts the append encoders stay off the heap with a
// warm reused buffer — the per-tick property the hub relies on.
func TestAppendZeroAlloc(t *testing.T) {
	m := sampleMedia(5)
	c := sampleChat(5)
	var buf []byte
	var err error
	if buf, err = AppendMedia(buf[:0], m); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if buf, err = AppendMedia(buf[:0], m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendMedia allocates %v per op, want 0", allocs)
	}
	if buf, err = AppendChat(buf[:0], c); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if buf, err = AppendChat(buf[:0], c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendChat allocates %v per op, want 0", allocs)
	}
}
