package transport

import "testing"

// FuzzDecode hammers the wire parser with arbitrary bytes: it must never
// panic and must round-trip its own encodings.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeHello(Hello{Seq: 1, Role: RoleScreen}))
	f.Add(EncodeMedia(Media{Seq: 2, ContentStart: -1, Samples: []int16{1, 2, 3}}))
	f.Add(EncodeChat(Chat{Seq: 3, ADCMicros: 99, Records: []PlaybackRecord{{ContentStart: 5, LocalMicros: 6, N: 7}}, Encoded: []byte{8, 9}}))
	f.Add([]byte{0x09, 0xE5, 0x02, 0x00, 0xFF, 0xFF, 0xFF, 0xFF}) // header only
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking.
		switch msg.Type {
		case TypeMedia:
			_ = EncodeMedia(msg.Media)
		case TypeChat:
			_ = EncodeChat(msg.Chat)
		case TypeHello:
			_ = EncodeHello(msg.Hello)
		}
	})
}
