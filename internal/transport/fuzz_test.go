package transport

import "testing"

// FuzzDecode hammers the wire parser with arbitrary bytes: it must never
// panic, must round-trip its own encodings (v1 and v2 headers alike), and
// anything it accepts must survive a re-encode/re-decode cycle.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeHello(Hello{Seq: 1, Role: RoleScreen}))
	f.Add(EncodeHello(Hello{Seq: 1, Session: 7, Role: RoleController}))
	if b, err := EncodeMedia(Media{Seq: 2, ContentStart: -1, Samples: []int16{1, 2, 3}}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeMedia(Media{Seq: 2, Session: 9, ContentStart: 960, ContentOff: 4, Samples: []int16{-1}}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeChat(Chat{Seq: 3, ADCMicros: 99, Records: []PlaybackRecord{{ContentStart: 5, LocalMicros: 6, N: 7}}, Encoded: []byte{8, 9}}); err == nil {
		f.Add(b)
	}
	if b, err := EncodeChat(Chat{Seq: 3, Session: 0xFFFFFFFF, ADCMicros: -1, Encoded: []byte{1}}); err == nil {
		f.Add(b)
	}
	f.Add(EncodeBye(Bye{Seq: 4}))
	f.Add(EncodeBye(Bye{Seq: 4, Session: 11}))
	f.Add(EncodeBusy(Busy{Seq: 5, Session: 65, Active: 64, Capacity: 64}))
	f.Add([]byte{0x09, 0xE5, 0x02, 0x00, 0xFF, 0xFF, 0xFF, 0xFF})    // v1 header only
	f.Add([]byte{0x09, 0xE5, 0x02, 0x01, 0xFF, 0xFF, 0xFF, 0xFF})    // v2 header truncated before session
	f.Add([]byte{0x09, 0xE5, 0x05, 0x01, 0, 0, 0, 0, 1, 0, 0, 0})    // busy with session, no body
	f.Add([]byte{0x09, 0xE5, 0x01, 0xFE, 0, 0, 0, 0, 1, 0, 0, 0, 1}) // unknown flag bits
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64*1024 {
			// Above the datagram limit Recv would never see it, and a
			// decoded payload could legitimately fail to re-encode.
			return
		}
		msg, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode (without panicking; oversize is
		// impossible for payloads parsed out of a <=64 KiB datagram) and
		// decode back to the same message.
		var out []byte
		switch msg.Type {
		case TypeMedia:
			out, err = EncodeMedia(msg.Media)
		case TypeChat:
			out, err = EncodeChat(msg.Chat)
		case TypeHello:
			out = EncodeHello(msg.Hello)
		case TypeBye:
			out = EncodeBye(msg.Bye)
		case TypeBusy:
			out = EncodeBusy(msg.Busy)
		}
		if err != nil {
			t.Fatalf("re-encode of accepted packet failed: %v", err)
		}
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Type != msg.Type || again.Session != msg.Session {
			t.Fatalf("round-trip drift: %+v vs %+v", msg, again)
		}
	})
}
