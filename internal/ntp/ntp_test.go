package ntp

import (
	"math"
	"testing"

	"ekho/internal/netsim"
	"ekho/internal/vclock"
)

func TestExchangeMath(t *testing.T) {
	// Client clock 2 s ahead; symmetric 50 ms each way; server holds 1 ms.
	e := Exchange{T1: 2.000, T2: 0.050, T3: 0.051, T4: 2.101}
	if math.Abs(e.Offset()-(-2.0)) > 1e-9 {
		t.Fatalf("offset %g want -2 (server minus client convention check)", e.Offset())
	}
	if math.Abs(e.RTT()-0.1) > 1e-9 {
		t.Fatalf("rtt %g want 0.1", e.RTT())
	}
	if math.Abs(e.OneWayDelayRTT2()-0.05) > 1e-9 {
		t.Fatalf("owd %g", e.OneWayDelayRTT2())
	}
}

func TestSymmetricPathSmallError(t *testing.T) {
	sched := vclock.NewScheduler()
	link := netsim.LinkConfig{BaseDelay: 0.040, JitterStd: 0.002, Seed: 1}
	clock := &vclock.Clock{Offset: 1.234}
	c := NewClient(sched, link, netsim.Asymmetric(link, 0, 50), clock)
	c.Run(20, 0.5)
	if len(c.Exchanges()) < 18 {
		t.Fatalf("exchanges %d", len(c.Exchanges()))
	}
	// Wait: Offset() estimates client-minus-server = -(clock offset)?
	// Offset() = ((T2-T1)+(T3-T4))/2; with client = true + off:
	// T2-T1 = d_up - off, T3-T4 = -(d_down + off) → offset = (d_up-d_down)/2 - off.
	// Symmetric: estimate = -off. The client code compares against
	// TrueOffset with matching sign.
	if err := c.OffsetError(); err > 0.005 {
		t.Fatalf("symmetric offset error %g want < 5 ms", err)
	}
}

func TestAsymmetricPathBiasedByHalf(t *testing.T) {
	sched := vclock.NewScheduler()
	down := netsim.LinkConfig{BaseDelay: 0.030, JitterStd: 0.001, Seed: 2}
	up := netsim.Asymmetric(down, 0.080, 60) // uplink 80 ms slower
	clock := &vclock.Clock{Offset: 0.5}
	c := NewClient(sched, up, down, clock)
	c.Run(20, 0.5)
	// Bias = asymmetry/2 = 40 ms, far above the 10 ms target.
	if err := c.OffsetError(); err < 0.030 || err > 0.050 {
		t.Fatalf("asymmetric offset error %g want ~0.040", err)
	}
}

func TestNoExchangesNaN(t *testing.T) {
	sched := vclock.NewScheduler()
	c := NewClient(sched, netsim.WiFi, netsim.WiFi, &vclock.Clock{})
	if !math.IsNaN(c.EstimatedOffset()) {
		t.Fatal("no data should be NaN")
	}
}
