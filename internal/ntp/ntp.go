// Package ntp implements the network-based clock synchronization baselines
// that the paper argues are insufficient (§2, §3.2): an NTP-style offset
// exchange and plain RTT/2 one-way-delay estimation. Both assume symmetric
// forward/backward delays; over asymmetric paths the estimate is biased by
// half the asymmetry, which is what makes sub-10 ms synchronization
// unreachable with these tools (Table 1: 0-60 ms error from RTT asymmetry).
package ntp

import (
	"math"
	"sort"

	"ekho/internal/netsim"
	"ekho/internal/vclock"
)

// Exchange is one NTP-style four-timestamp measurement, all in seconds:
// T1 client send (client clock), T2 server receive (server clock),
// T3 server send (server clock), T4 client receive (client clock).
type Exchange struct {
	T1, T2, T3, T4 float64
}

// Offset returns the estimated client-minus-server clock offset under the
// symmetric-delay assumption: ((T2-T1) + (T3-T4)) / 2.
func (e Exchange) Offset() float64 {
	return ((e.T2 - e.T1) + (e.T3 - e.T4)) / 2
}

// RTT returns the measured round-trip time excluding server hold time.
func (e Exchange) RTT() float64 {
	return (e.T4 - e.T1) - (e.T3 - e.T2)
}

// OneWayDelayRTT2 is the RTT/2 one-way-delay estimate the paper critiques.
func (e Exchange) OneWayDelayRTT2() float64 { return e.RTT() / 2 }

// Client runs NTP-style exchanges over a simulated path and estimates the
// clock offset between a device clock and the (true-time) server.
type Client struct {
	sched  *vclock.Scheduler
	path   *netsim.Path
	clock  *vclock.Clock
	events []Exchange
	// pending tracks in-flight requests by sequence.
	pending map[int]pendingReq
	seq     int
}

type pendingReq struct{ t1 float64 }

type request struct {
	id int
	t1 float64
}

type reply struct {
	id     int
	t1     float64
	t2, t3 float64
}

// NewClient wires an NTP client onto a path. The server end is simulated
// inside the client: uplink packets are answered immediately on arrival.
func NewClient(sched *vclock.Scheduler, up, down netsim.LinkConfig, clock *vclock.Clock) *Client {
	c := &Client{sched: sched, clock: clock, pending: make(map[int]pendingReq)}
	var downLink *netsim.Link
	upLink := netsim.NewLink(up, sched, func(p netsim.Packet) {
		// Server side: timestamp with true time (server clock = true).
		req := p.Payload.(request)
		now := float64(sched.Now())
		downLink.Send(reply{id: req.id, t1: req.t1, t2: now, t3: now})
	})
	downLink = netsim.NewLink(down, sched, func(p netsim.Packet) {
		rep := p.Payload.(reply)
		t4 := float64(c.clock.Local(sched.Now()))
		c.events = append(c.events, Exchange{T1: rep.t1, T2: rep.t2, T3: rep.t3, T4: t4})
		delete(c.pending, rep.id)
	})
	c.path = &netsim.Path{Up: upLink, Down: downLink}
	return c
}

// Poll issues one exchange now.
func (c *Client) Poll() {
	t1 := float64(c.clock.Local(c.sched.Now()))
	id := c.seq
	c.seq++
	c.pending[id] = pendingReq{t1: t1}
	c.path.Up.Send(request{id: id, t1: t1})
}

// Run issues count polls spaced interval seconds apart and drains the
// scheduler.
func (c *Client) Run(count int, interval float64) {
	for i := 0; i < count; i++ {
		c.Poll()
		c.sched.RunUntil(c.sched.Now() + vclock.Time(interval))
	}
	c.sched.Run()
}

// EstimatedOffset returns the client's estimate of its own clock offset
// (client minus server) as the negated median of the per-exchange NTP
// offsets, which measure server-minus-client. NTP proper uses minimum-RTT
// filtering; the median is a common simplification with the same
// asymmetry bias.
func (c *Client) EstimatedOffset() float64 {
	if len(c.events) == 0 {
		return math.NaN()
	}
	offs := make([]float64, len(c.events))
	for i, e := range c.events {
		offs[i] = e.Offset()
	}
	sort.Float64s(offs)
	return -offs[len(offs)/2]
}

// TrueOffset returns the actual client-minus-server offset at time zero
// (drift ignored for the short horizons simulated).
func (c *Client) TrueOffset() float64 { return c.clock.Offset }

// OffsetError returns |estimated − true| offset, the number that Table 1's
// "RTT asymmetry 0-60 ms" row quantifies.
func (c *Client) OffsetError() float64 {
	return math.Abs(c.EstimatedOffset() - c.TrueOffset())
}

// Exchanges exposes the raw measurements.
func (c *Client) Exchanges() []Exchange { return c.events }
