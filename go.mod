module ekho

go 1.22
