package ekho_test

import (
	"math"
	"testing"

	"ekho"
	"ekho/internal/gamesynth"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	seq := ekho.NewMarkerSequence(1)
	game := gamesynth.Generate(gamesynth.Catalog()[0], 4)
	marked, log := ekho.AddMarkers(game, seq, ekho.DefaultMarkerVolume)
	if marked.Len() != game.Len() || len(log) != 4 {
		t.Fatalf("mark: len %d, injections %d", marked.Len(), len(log))
	}
	// Pretend the recording is the marked audio delayed by 50 ms.
	const isd = 0.050
	rec := ekho.NewBuffer(ekho.SampleRate, marked.Len()+ekho.SampleRate)
	rec.MixInto(marked.Samples, int(isd*ekho.SampleRate), 1)
	var markerTimes []float64
	for _, inj := range log {
		markerTimes = append(markerTimes, float64(inj.StartSample)/ekho.SampleRate)
	}
	ms := ekho.EstimateISD(rec, 0, markerTimes, seq)
	if len(ms) < len(log)-1 {
		t.Fatalf("measurements %d", len(ms))
	}
	for _, m := range ms {
		if math.Abs(m.ISDSeconds-isd) > 0.001 {
			t.Fatalf("ISD %g want %g", m.ISDSeconds, isd)
		}
	}
}

func TestPublicDetect(t *testing.T) {
	seq := ekho.NewMarkerSequence(2)
	game := gamesynth.Generate(gamesynth.Catalog()[2], 3)
	marked, log := ekho.AddMarkers(game, seq, 0.5)
	marked.Samples = append(marked.Samples, make([]float64, ekho.SampleRate)...)
	dets := ekho.DetectMarkers(marked, seq)
	if len(dets) != len(log) {
		t.Fatalf("detections %d want %d", len(dets), len(log))
	}
}

func TestPublicConstantMarkers(t *testing.T) {
	seq := ekho.NewMarkerSequence(3)
	b, log := ekho.AddConstantMarkers(3*ekho.SampleRate, seq, 9)
	if b.Len() != 3*ekho.SampleRate || len(log) != 3 {
		t.Fatalf("constant markers: %d, %d", b.Len(), len(log))
	}
}

func TestPublicCompensator(t *testing.T) {
	c := ekho.NewCompensator(ekho.CompensatorConfig{})
	a := c.Offer(0, 0.1)
	if a == nil || a.Stream != ekho.AccessoryStream {
		t.Fatalf("action %+v", a)
	}
}

func TestPublicSession(t *testing.T) {
	sc := ekho.DefaultSessionScenario()
	sc.DurationSec = 25
	res := ekho.RunSession(sc)
	if len(res.Trace) == 0 || len(res.Measurements) == 0 {
		t.Fatal("session produced no data")
	}
}

func TestPublicStreamingEstimator(t *testing.T) {
	seq := ekho.NewMarkerSequence(4)
	game := gamesynth.Generate(gamesynth.Catalog()[4], 5)
	marked, log := ekho.AddMarkers(game, seq, 0.5)
	est := ekho.NewEstimator(seq)
	for _, inj := range log {
		est.AddMarkerTime(float64(inj.StartSample) / ekho.SampleRate)
	}
	var got []ekho.Measurement
	for i := 0; i+ekho.FrameSamples <= marked.Len(); i += ekho.FrameSamples {
		got = append(got, est.AddChat(marked.Samples[i:i+ekho.FrameSamples], float64(i)/ekho.SampleRate)...)
	}
	if len(got) == 0 {
		t.Fatal("no streaming measurements")
	}
	for _, m := range got {
		if math.Abs(m.ISDSeconds) > 0.001 {
			t.Fatalf("streaming ISD %g want ~0", m.ISDSeconds)
		}
	}
}

func TestPublicMultiSession(t *testing.T) {
	sc := ekho.DefaultMultiScenario()
	sc.DurationSec = 25
	res := ekho.RunMultiSession(sc)
	if len(res.Traces) != len(sc.Screens) {
		t.Fatalf("traces %d want %d", len(res.Traces), len(sc.Screens))
	}
	if res.Actions == 0 {
		t.Fatal("no joint actions")
	}
}

func TestPublicHapticsSession(t *testing.T) {
	sc := ekho.DefaultSessionScenario()
	sc.DurationSec = 25
	sc.HapticsEnabled = true
	res := ekho.RunSession(sc)
	if len(res.Haptics) == 0 {
		t.Fatal("no haptic records")
	}
	var ev ekho.HapticEvent = res.Haptics[0].Event
	if ev.Intensity <= 0 {
		t.Fatal("haptic intensity")
	}
}

func TestPublicFrameEditorWithModes(t *testing.T) {
	e := &ekho.FrameEditor{}
	e.Apply(ekho.Action{InsertFrames: 1})
	out := e.NextFrame(make([]float64, ekho.FrameSamples))
	if len(out) != ekho.FrameSamples {
		t.Fatalf("frame len %d", len(out))
	}
	if e.Buffered() != ekho.FrameSamples {
		t.Fatalf("buffered %d", e.Buffered())
	}
}

func TestPublicDetectNoMarkers(t *testing.T) {
	seq := ekho.NewMarkerSequence(9)
	noise := ekho.NewBuffer(ekho.SampleRate, 2*ekho.SampleRate)
	if dets := ekho.DetectMarkers(noise, seq); len(dets) != 0 {
		t.Fatalf("silence produced %d detections", len(dets))
	}
}
